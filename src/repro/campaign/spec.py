"""``CampaignSpec`` — a declarative grid of scenarios × methods × systems.

A campaign is the scenario-diversity axis of the evaluation pipeline made
first-class: one frozen, versioned value describing *which* scenarios to
evaluate, *with which* scheduling methods (:class:`~repro.service.SchedulerSpec`
strings), over *how many* deterministic systems, at *which* utilisation
points, with *how many* replications, reporting *which* metrics.

The spec follows the same serialisation discipline as
:class:`~repro.scenario.Scenario` and the service messages: a lossless JSON
round-trip through the versioned ``{kind, version, data}`` envelope
(``kind="repro/campaign"``, version 1) and a :meth:`~CampaignSpec.content_key`
hash over every field, so a campaign's artifact directory — like a schedule
cache entry — can never silently mix results from two different grids.

:meth:`CampaignSpec.cells` expands the grid into the canonical, deterministic
cell order every consumer shares (runner, journal, report): scenario-major,
then utilisation point, system index, replication and method.  That fixed
order is what makes resumed and multi-worker campaigns byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.core.serialization import (
    content_hash,
    parse_versioned_payload,
    versioned_payload,
)
from repro.runtime.models import ExecutionModelSpec
from repro.scenario import Scenario, ScenarioLike, create_scenario
from repro.service import SchedulerSpec

CAMPAIGN_KIND = "repro/campaign"
#: Version 2 added the optional ``runtime`` section; campaigns without one
#: are still written as version 1 so that version-1 readers keep working.
CAMPAIGN_VERSION = 2

#: Metrics a campaign can select, in canonical reporting order.
#: ``schedulable``/``psi``/``upsilon``/``best_psi``/``best_upsilon`` come from
#: the schedule responses (:mod:`repro.core.metrics` semantics); ``response_time``
#: is the analytical worst case of :func:`repro.analysis.max_response_time`.
CAMPAIGN_METRICS: Tuple[str, ...] = (
    "schedulable",
    "psi",
    "upsilon",
    "best_psi",
    "best_upsilon",
    "response_time",
)

#: Metrics where a *smaller* aggregate wins the leaderboard.
LOWER_IS_BETTER = frozenset({"response_time"})

#: Run-time metrics a campaign's ``runtime`` section can select, in canonical
#: reporting order.  They come from the simulation responses
#: (:class:`repro.runtime.SimulationResponse` semantics): ``accuracy`` is the
#: fraction of offline jobs executed exactly on time, ``psi``/``upsilon`` the
#: *run-time* timing metrics, and the fault counters what the controller's
#: fault-recovery unit observed.
RUNTIME_METRICS: Tuple[str, ...] = (
    "accuracy",
    "psi",
    "upsilon",
    "faults_detected",
    "skipped_jobs",
)

#: Run-time metrics where a *smaller* aggregate wins the leaderboard.
RUNTIME_LOWER_IS_BETTER = frozenset({"skipped_jobs"})


@dataclass(frozen=True)
class RuntimeSpec:
    """The optional run-time section of a campaign: *execute* every schedule.

    ``execution_models`` entries may be spec strings or
    :class:`~repro.runtime.ExecutionModelSpec` values (coerced at
    construction); every campaign cell is simulated once per model, so the
    run-time grid is the schedule grid × models.  ``max_events`` bounds every
    simulation (purely simulation-side: it never enters the embedded schedule
    question, so runtime cells stay content-identical to their schedule cells
    and reuse the campaign's cached schedules).  There is deliberately no
    per-campaign scheduling-horizon knob for the same reason.
    """

    execution_models: Tuple[ExecutionModelSpec, ...] = ("dedicated-controller",)
    metrics: Tuple[str, ...] = field(default=RUNTIME_METRICS)
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        models = self.execution_models
        if isinstance(models, (str, Mapping, SchedulerSpec)):
            models = (models,)
        coerced = tuple(
            ExecutionModelSpec.coerce(entry)
            if not isinstance(entry, Mapping)
            else ExecutionModelSpec.from_dict(dict(entry))
            for entry in models
        )
        if not coerced:
            raise ValueError("a runtime section needs at least one execution model")
        model_strings = [str(model) for model in coerced]
        if len(set(model_strings)) != len(model_strings):
            raise ValueError(
                f"runtime execution models must be unique, got {model_strings}"
            )
        object.__setattr__(self, "execution_models", coerced)

        metrics = tuple(self.metrics)
        unknown = set(metrics) - set(RUNTIME_METRICS)
        if unknown:
            raise ValueError(
                f"unknown runtime metrics {sorted(unknown)}; "
                f"available: {list(RUNTIME_METRICS)}"
            )
        if not metrics:
            raise ValueError("a runtime section needs at least one metric")
        if len(set(metrics)) != len(metrics):
            raise ValueError(f"runtime metrics must be unique, got {list(metrics)}")
        object.__setattr__(
            self, "metrics", tuple(m for m in RUNTIME_METRICS if m in metrics)
        )

        if self.max_events is not None and (
            not isinstance(self.max_events, int)
            or isinstance(self.max_events, bool)
            or self.max_events <= 0
        ):
            raise ValueError(
                f"runtime max_events must be positive, got {self.max_events!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "execution_models": [model.to_dict() for model in self.execution_models],
            "metrics": list(self.metrics),
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RuntimeSpec":
        known = {"execution_models", "metrics", "max_events"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown runtime fields: {sorted(unknown)}")
        return cls(
            execution_models=tuple(
                ExecutionModelSpec.from_dict(entry)
                for entry in (data.get("execution_models") or ())
            )
            or ("dedicated-controller",),
            metrics=tuple(data.get("metrics") or RUNTIME_METRICS),
            max_events=data.get("max_events"),
        )


@dataclass(frozen=True)
class CampaignCell:
    """One evaluation cell of the expanded grid (picklable, hashable).

    ``utilisation`` is ``None`` when the campaign has no explicit utilisation
    sweep — the scenario's own workload utilisation applies.  ``method`` is
    the canonical spec string, so logically-equal specs name the same cell.
    """

    scenario: str
    method: str
    utilisation: Optional[float]
    system_index: int
    replication: int

    def key(self) -> Tuple[str, str, Optional[float], int, int]:
        """The journal/lookup key of this cell."""
        return (
            self.scenario,
            self.method,
            self.utilisation,
            self.system_index,
            self.replication,
        )


@dataclass(frozen=True)
class RuntimeCell:
    """One run-time simulation cell: a schedule cell × an execution model.

    ``execution_model`` is the canonical model spec string, so logically
    equal model specs name the same cell.
    """

    scenario: str
    method: str
    execution_model: str
    utilisation: Optional[float]
    system_index: int
    replication: int

    def key(self) -> Tuple[str, str, str, Optional[float], int, int]:
        """The journal/lookup key of this cell."""
        return (
            self.scenario,
            self.method,
            self.execution_model,
            self.utilisation,
            self.system_index,
            self.replication,
        )

    def schedule_cell(self) -> CampaignCell:
        """The schedule cell this simulation executes the schedule of."""
        return CampaignCell(
            scenario=self.scenario,
            method=self.method,
            utilisation=self.utilisation,
            system_index=self.system_index,
            replication=self.replication,
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A frozen, versioned description of one evaluation campaign.

    ``scenarios`` entries may be given as anything
    :func:`repro.scenario.create_scenario` resolves (preset names, payload
    dicts, inline JSON, ready :class:`~repro.scenario.Scenario` values);
    ``methods`` entries as spec strings or :class:`SchedulerSpec` values.
    Both are coerced at construction, so a spec built from CLI strings and one
    rebuilt from its JSON form compare (and hash) equal.
    """

    name: str = "campaign"
    description: str = ""
    scenarios: Tuple[Scenario, ...] = ("paper-default",)
    methods: Tuple[SchedulerSpec, ...] = ("static",)
    n_systems: int = 1
    utilisations: Tuple[float, ...] = ()
    replications: int = 1
    metrics: Tuple[str, ...] = field(default=CAMPAIGN_METRICS)
    #: Optional run-time section: when set, every cell's schedule is also
    #: *executed* on each listed execution model (see :class:`RuntimeSpec`).
    runtime: Optional[RuntimeSpec] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name or self.name != self.name.strip():
            raise ValueError(f"campaign name must be a non-empty stripped string, got {self.name!r}")
        object.__setattr__(
            self,
            "scenarios",
            tuple(create_scenario(entry) for entry in self._as_tuple("scenarios")),
        )
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"campaign scenario names must be unique, got {names}")

        object.__setattr__(
            self,
            "methods",
            tuple(SchedulerSpec.coerce(entry) for entry in self._as_tuple("methods")),
        )
        if not self.methods:
            raise ValueError("a campaign needs at least one method")
        method_strings = [str(method) for method in self.methods]
        if len(set(method_strings)) != len(method_strings):
            raise ValueError(f"campaign methods must be unique, got {method_strings}")

        for attr in ("n_systems", "replications"):
            value = getattr(self, attr)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(f"{attr} must be a positive integer, got {value!r}")

        utilisations = tuple(float(u) for u in self._as_tuple("utilisations"))
        for value in utilisations:
            if not 0.0 < value <= 1.0:
                raise ValueError(f"utilisations must lie in (0, 1], got {value!r}")
        if len(set(utilisations)) != len(utilisations):
            raise ValueError(f"utilisations must be unique, got {list(utilisations)}")
        object.__setattr__(self, "utilisations", utilisations)

        metrics = tuple(self._as_tuple("metrics"))
        unknown = set(metrics) - set(CAMPAIGN_METRICS)
        if unknown:
            raise ValueError(
                f"unknown campaign metrics {sorted(unknown)}; "
                f"available: {list(CAMPAIGN_METRICS)}"
            )
        if not metrics:
            raise ValueError("a campaign needs at least one metric")
        if len(set(metrics)) != len(metrics):
            raise ValueError(f"campaign metrics must be unique, got {list(metrics)}")
        # Normalise to canonical reporting order so logically-equal selections
        # hash (and therefore cache) identically.
        object.__setattr__(
            self, "metrics", tuple(m for m in CAMPAIGN_METRICS if m in metrics)
        )

        if isinstance(self.runtime, Mapping):
            object.__setattr__(self, "runtime", RuntimeSpec.from_dict(self.runtime))
        if self.runtime is not None and not isinstance(self.runtime, RuntimeSpec):
            raise ValueError(
                f"campaign runtime must be a RuntimeSpec (or its dict form), "
                f"got {self.runtime!r}"
            )

    def _as_tuple(self, attr: str) -> Tuple:
        value = getattr(self, attr)
        if isinstance(value, (str, Mapping, Scenario, SchedulerSpec)):
            # A lone entry is almost certainly a mistake that tuple() would
            # either reject or silently explode character-wise; wrap it.
            return (value,)
        return tuple(value)

    # -- the grid ----------------------------------------------------------------

    def utilisation_points(self) -> Tuple[Optional[float], ...]:
        """The utilisation axis; ``(None,)`` means each scenario's own value."""
        return self.utilisations if self.utilisations else (None,)

    @property
    def n_cells(self) -> int:
        return (
            len(self.scenarios)
            * len(self.methods)
            * len(self.utilisation_points())
            * self.n_systems
            * self.replications
        )

    def cells(self) -> Iterator[CampaignCell]:
        """Expand the grid in the canonical deterministic order.

        Scenario-major, then utilisation, system index, replication, method —
        the order the runner computes, the journal records and the report
        aggregates in, at every worker count.
        """
        for scenario in self.scenarios:
            for utilisation in self.utilisation_points():
                for system_index in range(self.n_systems):
                    for replication in range(self.replications):
                        for method in self.methods:
                            yield CampaignCell(
                                scenario=scenario.name,
                                method=str(method),
                                utilisation=utilisation,
                                system_index=system_index,
                                replication=replication,
                            )

    @property
    def n_runtime_cells(self) -> int:
        """Cells of the run-time grid (0 without a ``runtime`` section)."""
        if self.runtime is None:
            return 0
        return self.n_cells * len(self.runtime.execution_models)

    def runtime_cells(self) -> Iterator[RuntimeCell]:
        """Expand the run-time grid: schedule-cell order, models innermost.

        Like :meth:`cells`, this order is canonical — the runner simulates,
        the journal records and the report aggregates in it, at every worker
        count.  Empty when the campaign has no ``runtime`` section.
        """
        if self.runtime is None:
            return
        for cell in self.cells():
            for model in self.runtime.execution_models:
                yield RuntimeCell(
                    scenario=cell.scenario,
                    method=cell.method,
                    execution_model=str(model),
                    utilisation=cell.utilisation,
                    system_index=cell.system_index,
                    replication=cell.replication,
                )

    def scenario_by_name(self, name: str) -> Scenario:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"campaign has no scenario named {name!r}")

    # -- serialisation -----------------------------------------------------------

    def data_dict(self) -> Dict[str, Any]:
        """The bare (unversioned) payload; every field enters the content key.

        The ``runtime`` key is present only when the section is set, so
        campaigns without one keep their historical payloads — and therefore
        their content keys and artifact directories.
        """
        data = {
            "name": self.name,
            "description": self.description,
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "methods": [method.to_dict() for method in self.methods],
            "n_systems": self.n_systems,
            "utilisations": list(self.utilisations),
            "replications": self.replications,
            "metrics": list(self.metrics),
        }
        if self.runtime is not None:
            data["runtime"] = self.runtime.to_dict()
        return data

    def to_dict(self) -> Dict[str, Any]:
        # Campaigns without a runtime section serialise exactly as version 1
        # did, so payloads only claim the newer version when they need it.
        version = CAMPAIGN_VERSION if self.runtime is not None else 1
        return versioned_payload(CAMPAIGN_KIND, version, self.data_dict())

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        _, data = parse_versioned_payload(
            dict(payload), CAMPAIGN_KIND, max_version=CAMPAIGN_VERSION
        )
        known = {
            "name",
            "description",
            "scenarios",
            "methods",
            "n_systems",
            "utilisations",
            "replications",
            "metrics",
            "runtime",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign fields: {sorted(unknown)}")
        runtime = data.get("runtime")
        return cls(
            name=data.get("name", "campaign"),
            description=data.get("description", ""),
            scenarios=tuple(Scenario.from_dict(entry) for entry in data["scenarios"]),
            methods=tuple(SchedulerSpec.from_dict(entry) for entry in data["methods"]),
            n_systems=int(data.get("n_systems", 1)),
            utilisations=tuple(data.get("utilisations") or ()),
            replications=int(data.get("replications", 1)),
            metrics=tuple(data.get("metrics") or CAMPAIGN_METRICS),
            runtime=RuntimeSpec.from_dict(runtime) if runtime is not None else None,
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def content_key(self) -> str:
        """Content-address of the full campaign (any field change changes it).

        The spec is frozen, so the key is hashed once and memoised.
        """
        cached = self.__dict__.get("_content_key")
        if cached is None:
            cached = content_hash(self.data_dict())
            object.__setattr__(self, "_content_key", cached)
        return cached


#: Anything :func:`create_campaign` can resolve into a spec.
CampaignLike = Union[str, Mapping, CampaignSpec]


def create_campaign(ref: CampaignLike) -> CampaignSpec:
    """Resolve a campaign reference: a spec, a payload dict, or JSON text.

    Mirrors :func:`repro.scenario.create_scenario` (minus the name registry —
    campaigns are authored, not preset): strings must be inline JSON or a path
    handled by the caller.
    """
    if isinstance(ref, CampaignSpec):
        return ref
    if isinstance(ref, Mapping):
        return CampaignSpec.from_dict(ref)
    if not isinstance(ref, str):
        raise TypeError(f"cannot resolve a campaign from {type(ref).__name__}")
    text = ref.strip()
    if not text.startswith("{"):
        raise ValueError(
            "campaign references must be inline repro/campaign JSON "
            f"(or a CampaignSpec/payload dict), got {ref!r}"
        )
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"invalid inline campaign JSON: {error}") from None
    return CampaignSpec.from_dict(payload)


def load_campaign(ref: CampaignLike) -> CampaignSpec:
    """Like :func:`create_campaign`, but strings may also name a JSON file.

    This is the resolution every CLI ``--campaign``/``spec`` argument goes
    through: inline JSON (anything starting with ``{``) parses directly,
    anything else is read as a path to a ``repro/campaign`` payload file.
    """
    if isinstance(ref, str) and not ref.strip().startswith("{"):
        path = Path(ref)
        if not path.exists():
            raise ValueError(f"campaign spec file not found: {ref!r}")
        return CampaignSpec.from_json(path.read_text(encoding="utf-8"))
    return create_campaign(ref)


def build_campaign(
    *,
    name: str = "campaign",
    description: str = "",
    scenarios: Sequence[ScenarioLike] = ("paper-default",),
    methods: Sequence[Union[str, SchedulerSpec]] = ("static",),
    n_systems: int = 1,
    utilisations: Sequence[float] = (),
    replications: int = 1,
    metrics: Sequence[str] = CAMPAIGN_METRICS,
    execution_models: Sequence[Union[str, ExecutionModelSpec]] = (),
    runtime: Optional[RuntimeSpec] = None,
) -> CampaignSpec:
    """Keyword-flavoured constructor used by the CLI's flag-builder mode.

    ``execution_models`` is the convenience form of the ``runtime`` section:
    a non-empty sequence builds a default :class:`RuntimeSpec` around it.
    """
    if execution_models and runtime is not None:
        raise ValueError("pass either execution_models or a runtime section, not both")
    if execution_models:
        runtime = RuntimeSpec(execution_models=tuple(execution_models))
    return CampaignSpec(
        name=name,
        description=description,
        scenarios=tuple(scenarios),
        methods=tuple(methods),
        n_systems=n_systems,
        utilisations=tuple(utilisations),
        replications=replications,
        metrics=tuple(metrics),
        runtime=runtime,
    )
