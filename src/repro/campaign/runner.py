"""``CampaignRunner`` — execute a campaign grid with checkpointed resume.

The runner expands a :class:`~repro.campaign.spec.CampaignSpec` into
:class:`~repro.service.ScheduleRequest` cells and streams them through one
shared :class:`~repro.service.SchedulingService` — reusing its worker pool,
in-batch dedup and content-addressed schedule cache — while checkpointing
every finished cell to a ``campaign.jsonl`` journal under a directory keyed
by the campaign's content key (the same discipline as
:class:`repro.experiments.artifacts.ArtifactStore`).  An interrupted campaign
re-launched with the same spec therefore resumes with **zero** recomputed
cells, and because cells are journalled in the spec's canonical grid order,
the journal — and any report built from it — is byte-identical at every
worker count.

Determinism chain: a cell's scenario + system index materialise a
deterministic system (:func:`repro.scenario.materialize`); the service's
``execute_request`` is pure in the request (stochastic methods get
content-derived seeds); replications of stochastic methods decorrelate
through a seed derived from the cell's own coordinates.  Nothing anywhere
depends on wall clock, process identity or worker count.

**Sharding** stretches the same guarantees across processes and machines:
``CampaignRunner(..., shard=(i, n))`` claims the cells whose *content keys*
fall into the ``i``-th of ``n`` contiguous keyspace ranges
(:func:`shard_of_key` — disjoint and complete by construction, and stable
under grid growth within a range) and journals them to its own
``campaign.shard-i-of-n.jsonl``.  Each run-time cell rides with its schedule
cell's key, so every shard worker simulates against schedules it computed
itself.  Once every shard journal is complete,
:func:`merge_shard_journals` (invoked automatically by the shard that
finishes last, or explicitly via ``python -m repro.campaign merge``)
reassembles the canonical ``campaign.jsonl`` — byte-identical to a
single-process run, so resume and reports behave exactly as if the campaign
had never been split.
"""

from __future__ import annotations

import io
import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.analysis import max_response_time
from repro.campaign.report import CampaignReport
from repro.campaign.spec import CampaignCell, CampaignSpec, RuntimeCell
from repro.campaign.timings import (
    TimingsWriter,
    runtime_timing_entry,
    schedule_timing_entry,
)
from repro.core.serialization import atomic_write_json, canonical_json, content_hash
from repro.runtime import SimulationRequest, SimulationResponse, SimulationService
from repro.scenario import Scenario
from repro.service import ScheduleRequest, ScheduleResponse, SchedulerSpec, SchedulingService
from repro.service.service import DERIVED_SEED_METHODS

CAMPAIGN_JOURNAL_FILENAME = "campaign.jsonl"
CAMPAIGN_SPEC_FILENAME = "campaign.json"

#: Per-shard journal filenames: ``campaign.shard-3-of-8.jsonl``.
SHARD_JOURNAL_RE = re.compile(r"^campaign\.shard-(\d+)-of-(\d+)\.jsonl$")

#: Journal/lookup key of one cell; mirrors :meth:`CampaignCell.key`.
CellKey = Tuple[str, str, Optional[float], int, int]

#: Journal/lookup key of one run-time cell; mirrors :meth:`RuntimeCell.key`.
RuntimeCellKey = Tuple[str, str, str, Optional[float], int, int]

#: Per-cell metric values, keyed by metric name (bools stored as bools).
CellValues = Dict[str, Union[bool, float]]


# -- cell -> request translation (pure functions) -------------------------------


def cell_scenario(spec: CampaignSpec, cell: CampaignCell) -> Scenario:
    """The concrete scenario of one cell (utilisation pinned when swept)."""
    scenario = spec.scenario_by_name(cell.scenario)
    if cell.utilisation is not None:
        scenario = scenario.with_utilisation(cell.utilisation)
    return scenario


def replication_seed(scenario: Scenario, cell: CampaignCell) -> int:
    """Deterministic RNG seed decorrelating one stochastic replication.

    Derived from the cell's full coordinates (scenario content, method,
    utilisation, system index, replication), so replications of the same cell
    draw independent streams while the whole grid stays a pure function of
    the spec.
    """
    return int(
        content_hash(
            {
                "purpose": "campaign-replication-seed",
                "scenario": scenario.content_key(),
                "method": cell.method,
                "system_index": cell.system_index,
                "replication": cell.replication,
            }
        ),
        16,
    )


def cell_request(spec: CampaignSpec, cell: CampaignCell) -> ScheduleRequest:
    """Build the :class:`ScheduleRequest` one cell submits to the service.

    Replication 0 issues the plain request — content-identical to a direct
    service call for the same scenario/method, so campaign cells and ad-hoc
    batches share schedule-cache entries.  Later replications pin a derived
    seed on stochastic methods (:data:`DERIVED_SEED_METHODS`) that do not pin
    one themselves; deterministic methods replicate to content-identical
    requests, which the service dedups for free (their variance is genuinely
    zero).
    """
    scenario = cell_scenario(spec, cell)
    method = SchedulerSpec.parse(cell.method)
    if (
        cell.replication > 0
        and method.name in DERIVED_SEED_METHODS
        and method.options_dict().get("seed") is None
    ):
        method = method.with_options(seed=replication_seed(scenario, cell))
    return ScheduleRequest(
        scenario=scenario,
        system_index=cell.system_index,
        spec=method,
        request_id=(
            f"{spec.name}/{cell.scenario}/{cell.method}"
            f"/u={cell.utilisation}/i={cell.system_index}/r={cell.replication}"
        ),
    )


def runtime_cell_request(spec: CampaignSpec, cell: RuntimeCell) -> SimulationRequest:
    """Build the :class:`SimulationRequest` one run-time cell submits.

    The embedded schedule question (scenario, system index, method — with the
    same replication-seed pinning as :func:`cell_request`) is content-identical
    to the corresponding schedule cell's request, so the simulation reuses the
    schedule the campaign already computed instead of scheduling again.
    """
    if spec.runtime is None:
        raise ValueError("campaign has no runtime section")
    schedule_request = cell_request(spec, cell.schedule_cell())
    return SimulationRequest(
        scenario=schedule_request.scenario,
        system_index=cell.system_index,
        method=schedule_request.spec,
        execution_model=cell.execution_model,
        max_events=spec.runtime.max_events,
        request_id=(
            f"{spec.name}/{cell.scenario}/{cell.method}/x={cell.execution_model}"
            f"/u={cell.utilisation}/i={cell.system_index}/r={cell.replication}"
        ),
    )


def runtime_cell_values(
    spec: CampaignSpec, response: SimulationResponse
) -> CellValues:
    """Extract the runtime section's selected metrics from one simulation."""
    assert spec.runtime is not None
    values: CellValues = {}
    for metric in spec.runtime.metrics:
        value = getattr(response, metric)
        values[metric] = value if isinstance(value, (bool, int)) else float(value)
    return values


def cell_values(
    spec: CampaignSpec,
    request: ScheduleRequest,
    response: ScheduleResponse,
    *,
    analysis_cache: Optional[Dict[Tuple[str, int], float]] = None,
) -> CellValues:
    """Extract the spec's selected metrics from one finished cell.

    ``response_time`` is a workload-difficulty diagnostic — the analytical
    FPS worst case of the materialised system, identical for every method
    and replication of the same (scenario, utilisation, system index) — so
    callers evaluating a grid pass an ``analysis_cache`` keyed by
    ``(scenario content key, system index)`` to analyse each system once
    instead of once per cell.
    """
    values: CellValues = {}
    for metric in spec.metrics:
        if metric == "schedulable":
            values[metric] = bool(response.schedulable)
        elif metric == "response_time":
            cache_key = (request.scenario.content_key(), request.system_index)
            if analysis_cache is not None and cache_key in analysis_cache:
                values[metric] = analysis_cache[cache_key]
            else:
                values[metric] = max_response_time(request.effective_task_set())
                if analysis_cache is not None:
                    analysis_cache[cache_key] = values[metric]
        else:  # psi / upsilon / best_psi / best_upsilon
            values[metric] = float(getattr(response, metric))
    return values


# -- sharding (pure functions) --------------------------------------------------


def shard_of_key(content_key: str, n_shards: int) -> int:
    """The 0-based shard owning ``content_key``, out of ``n_shards``.

    The 64-bit keyspace is split into ``n_shards`` contiguous ranges (the
    classic range partition), so the shards are disjoint and complete for any
    key and any ``n_shards`` *by construction*, with no coordination and no
    shared state.  Content keys are uniformly distributed (they are hashes),
    so the ranges are balanced in expectation.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    prefix = content_key[:16]
    if len(prefix) < 16 or any(c not in "0123456789abcdef" for c in prefix):
        raise ValueError(f"invalid content key {content_key!r}")
    return (int(prefix, 16) * n_shards) >> 64


def cell_shard(spec: CampaignSpec, cell: CampaignCell, n_shards: int) -> int:
    """The 0-based shard owning one schedule cell (by its request content key)."""
    return shard_of_key(cell_request(spec, cell).content_key(), n_shards)


def runtime_cell_shard(spec: CampaignSpec, cell: RuntimeCell, n_shards: int) -> int:
    """The 0-based shard owning one run-time cell.

    Run-time cells are sharded by their *schedule* cell's content key, so a
    shard worker always simulates against schedules it computed itself (its
    schedule cache is warm) — and every execution model of one schedule cell
    stays on one worker.
    """
    return cell_shard(spec, cell.schedule_cell(), n_shards)


def shard_journal_filename(shard_index: int, n_shards: int) -> str:
    """Journal filename of shard ``shard_index`` (1-based) of ``n_shards``."""
    return f"campaign.shard-{shard_index}-of-{n_shards}.jsonl"


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``I/N`` shard designator into ``(index, total)`` (1-based)."""
    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not match:
        raise ValueError(f"shard must look like I/N (e.g. 2/4), got {text!r}")
    index, total = int(match.group(1)), int(match.group(2))
    if total < 1 or not 1 <= index <= total:
        raise ValueError(f"shard index must satisfy 1 <= I <= N, got {text!r}")
    return index, total


# -- journal entry construction (shared by the runner and the merge) ------------


def _schedule_entry_dict(cell: CampaignCell, values: CellValues) -> Dict:
    return {
        "sc": cell.scenario,
        "m": cell.method,
        "u": cell.utilisation,
        "i": cell.system_index,
        "r": cell.replication,
        "v": values,
    }


def _runtime_entry_dict(cell: RuntimeCell, values: CellValues) -> Dict:
    # Run-time cells share the journal; the "x" (execution model) field
    # tells the two record shapes apart on load.
    return {
        "sc": cell.scenario,
        "m": cell.method,
        "x": cell.execution_model,
        "u": cell.utilisation,
        "i": cell.system_index,
        "r": cell.replication,
        "v": values,
    }


# -- the runner ----------------------------------------------------------------


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` call."""

    spec: CampaignSpec
    #: Every completed cell (resumed + freshly evaluated), by cell key.
    records: Dict[CellKey, CellValues]
    #: Cells evaluated by *this* call (not served from the journal).
    evaluated: int
    #: Cells served from the journal before this call computed anything.
    resumed: int = 0
    #: Every completed run-time cell, by run-time cell key (empty without a
    #: ``runtime`` section).  ``evaluated``/``resumed`` count these too.
    runtime_records: Dict[RuntimeCellKey, CellValues] = field(default_factory=dict)
    #: Cells this run was responsible for — the full grid, or (sharded) the
    #: shard's share of it.  ``None`` means the full grid.
    expected_cells: Optional[int] = None
    expected_runtime_cells: Optional[int] = None
    #: Path of the canonical merged journal, when a sharded run found every
    #: shard complete and (re)assembled ``campaign.jsonl``.
    merged_journal: Optional[Path] = None

    @property
    def complete(self) -> bool:
        expected = (
            self.expected_cells if self.expected_cells is not None else self.spec.n_cells
        )
        expected_runtime = (
            self.expected_runtime_cells
            if self.expected_runtime_cells is not None
            else self.spec.n_runtime_cells
        )
        return (
            len(self.records) == expected
            and len(self.runtime_records) == expected_runtime
        )

    def report(self) -> CampaignReport:
        return CampaignReport.from_records(
            self.spec, self.records, runtime_records=self.runtime_records
        )


@dataclass
class _Progress:
    """Internal accounting handed to progress callbacks."""

    done: int
    total: int
    evaluated: int


class CampaignRunner:
    """Runs one campaign, checkpointing progress for interruption-free resume.

    Parameters
    ----------
    spec:
        The campaign to run.
    artifact_dir:
        Root directory for campaign artifacts.  The runner owns
        ``<artifact_dir>/<spec.content_key()>/`` — the spec payload
        (``campaign.json``), the cell journal (``campaign.jsonl``) — so
        different campaigns can share one root without mixing.  ``None``
        keeps all progress in memory (no resume across processes).
    n_workers:
        Worker processes of the shared scheduling service (1 = in-process).
    cache_dir:
        Optional persistent schedule-cache directory for the service; safe to
        share between concurrent campaign processes (entries are written
        atomically).
    cache_backend:
        Storage-backend spec string (see :mod:`repro.store`) for the
        persistent caches instead of ``cache_dir`` — e.g.
        ``sqlite:path=cache.db`` keeps the schedule *and* simulation caches
        of the campaign in one SQLite file, safe for N concurrent shard
        workers.  Conflicts with ``cache_dir``.
    shard:
        ``(index, total)`` with ``1 <= index <= total``: run only the cells
        whose content keys fall into this shard's keyspace range (see
        :func:`shard_of_key`), journalling to
        ``campaign.shard-index-of-total.jsonl``.  N workers given shards
        ``(1, N) .. (N, N)`` over the same ``artifact_dir`` cover the grid
        disjointly and completely; when the last one finishes, the shard
        journals are merged into the canonical ``campaign.jsonl``
        automatically.  Requires ``artifact_dir``.
    service:
        An existing service to schedule through (its worker pool and cache
        are reused; ``n_workers``/``cache_dir`` are then ignored).  The
        caller keeps ownership and must close it.  Anything with the
        service's ``submit_batch``/``n_workers``/``close`` surface works —
        in particular :class:`~repro.server.RemoteSchedulingService`, which
        rides a running serving daemon.
    simulation:
        Like ``service``, for the run-time side: an existing simulation
        service (or :class:`~repro.server.RemoteSimulationService`) to
        simulate through.  The caller keeps ownership and must close it.
        Without one, a campaign with a runtime section builds its own
        :class:`~repro.runtime.SimulationService` over ``service``.
    timings:
        Append one line per freshly evaluated cell (coordinates, cache
        status, ``elapsed_ms``) to a ``campaign.metrics.jsonl`` sidecar next
        to the journal (see :mod:`repro.campaign.timings`).  Observability
        only: the journal's bytes are identical with timings on or off.
        Requires ``artifact_dir``; ignored without one.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        artifact_dir: Optional[Union[str, Path]] = None,
        n_workers: int = 1,
        cache_dir: Optional[str] = None,
        cache_backend: Optional[str] = None,
        shard: Optional[Tuple[int, int]] = None,
        service: Optional[SchedulingService] = None,
        simulation: Optional[SimulationService] = None,
        timings: bool = False,
    ):
        if cache_dir is not None and cache_backend is not None:
            raise ValueError("pass either cache_dir or cache_backend, not both")
        if shard is not None:
            index, total = shard
            if total < 1 or not 1 <= index <= total:
                raise ValueError(
                    f"shard must satisfy 1 <= index <= total, got {shard!r}"
                )
            if artifact_dir is None:
                raise ValueError("sharded runs need an artifact_dir to merge from")
        self.spec = spec
        self.shard = shard
        self.n_workers = n_workers if service is None else service.n_workers
        if service is not None:
            self.service = service
            self._owns_service = False
        else:
            self.service = SchedulingService(
                n_workers=n_workers, cache_dir=cache_dir, cache_backend=cache_backend
            )
            self._owns_service = True

        # The simulation side (present only when the spec has a runtime
        # section) schedules through the same SchedulingService, so run-time
        # cells reuse the schedules their schedule cells just computed.
        self.simulation: Optional[SimulationService] = simulation
        self._owns_simulation = simulation is None
        if simulation is None and spec.runtime is not None:
            self.simulation = SimulationService(
                n_workers=self.n_workers,
                cache_backend=cache_backend,
                scheduling=self.service,
            )

        self.directory: Optional[Path] = None
        self._journal: Optional[io.TextIOWrapper] = None
        self._journal_filename = (
            shard_journal_filename(*shard)
            if shard is not None
            else CAMPAIGN_JOURNAL_FILENAME
        )
        self._records: Dict[CellKey, CellValues] = {}
        self._runtime_records: Dict[RuntimeCellKey, CellValues] = {}
        if artifact_dir is not None:
            self.directory = Path(artifact_dir) / spec.content_key()
            self.directory.mkdir(parents=True, exist_ok=True)
            self._write_spec()
            self._load_journal()
        # Per-cell wall-clock timing sidecar (observability only): lines go
        # to <journal stem>.metrics.jsonl beside the journal, never into the
        # journal itself — journals stay byte-identical with timings on or
        # off, and shard merges ignore sidecars entirely.
        self._timings = TimingsWriter(self.directory, self._journal_filename, timings)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._timings.close()
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self.simulation is not None and self._owns_simulation:
            self.simulation.close()
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- state -------------------------------------------------------------------

    @property
    def completed_cells(self) -> int:
        """Cells already answered by the journal (or earlier runs)."""
        return len(self._records) + len(self._runtime_records)

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        *,
        max_cells: Optional[int] = None,
        progress: Optional[Callable[[_Progress], None]] = None,
    ) -> CampaignResult:
        """Execute every pending cell of the grid (in canonical order).

        ``max_cells`` bounds how many *pending* cells this call evaluates
        (schedule cells first, then run-time cells) — the hook tests use to
        simulate an interrupt mid-grid; a subsequent call picks up exactly
        where this one stopped.  ``progress`` is called after every
        checkpointed chunk.
        """
        cells = list(self.spec.cells())
        runtime_cells = list(self.spec.runtime_cells())
        if self.shard is not None:
            # The shard's cells, still in canonical grid order (a subsequence
            # of it) — which is what makes the merged journal byte-identical
            # to a single-process run.
            index, n_shards = self.shard
            cells = [
                cell
                for cell in cells
                if cell_shard(self.spec, cell, n_shards) == index - 1
            ]
            runtime_cells = [
                cell
                for cell in runtime_cells
                if runtime_cell_shard(self.spec, cell, n_shards) == index - 1
            ]
        total = len(cells) + len(runtime_cells)
        resumed = sum(1 for cell in cells if cell.key() in self._records) + sum(
            1 for cell in runtime_cells if cell.key() in self._runtime_records
        )
        pending = [cell for cell in cells if cell.key() not in self._records]
        runtime_pending = [
            cell for cell in runtime_cells if cell.key() not in self._runtime_records
        ]
        if max_cells is not None:
            runtime_pending = runtime_pending[: max(0, max_cells - len(pending))]
            pending = pending[:max_cells]

        evaluated = 0
        # One response-time analysis per distinct system, not per cell.
        analysis_cache: Dict[Tuple[str, int], float] = {}
        # Chunks bound how much work an interrupt can lose while still
        # keeping every worker busy (serial runs checkpoint every cell); the
        # journal content is chunking- (and therefore worker-count-)
        # independent because cells are always processed and appended in
        # canonical grid order.
        chunk_size = 1 if self.n_workers == 1 else self.n_workers * 4
        for start in range(0, len(pending), chunk_size):
            chunk = pending[start : start + chunk_size]
            requests = [cell_request(self.spec, cell) for cell in chunk]
            responses = self.service.submit_batch(requests)
            for cell, request, response in zip(chunk, requests, responses):
                values = cell_values(
                    self.spec, request, response, analysis_cache=analysis_cache
                )
                self._record(cell, values)
                self._timings.write(
                    schedule_timing_entry(
                        cell, cache=response.cache, elapsed_s=response.elapsed_s
                    )
                )
                evaluated += 1
            if progress is not None:
                progress(
                    _Progress(
                        done=resumed + evaluated, total=total, evaluated=evaluated
                    )
                )

        # The run-time grid follows the schedule grid, so every simulation's
        # embedded schedule question is already cached when it runs.
        for start in range(0, len(runtime_pending), chunk_size):
            chunk = runtime_pending[start : start + chunk_size]
            assert self.simulation is not None
            requests = [runtime_cell_request(self.spec, cell) for cell in chunk]
            responses = self.simulation.submit_batch(requests)
            for cell, response in zip(chunk, responses):
                self._record_runtime(cell, runtime_cell_values(self.spec, response))
                self._timings.write(
                    runtime_timing_entry(
                        cell, cache=response.cache, elapsed_s=response.elapsed_s
                    )
                )
                evaluated += 1
            if progress is not None:
                progress(
                    _Progress(
                        done=resumed + evaluated, total=total, evaluated=evaluated
                    )
                )

        records = {
            cell.key(): self._records[cell.key()]
            for cell in cells
            if cell.key() in self._records
        }
        runtime_records = {
            cell.key(): self._runtime_records[cell.key()]
            for cell in runtime_cells
            if cell.key() in self._runtime_records
        }
        result = CampaignResult(
            spec=self.spec,
            records=records,
            evaluated=evaluated,
            resumed=resumed,
            runtime_records=runtime_records,
            expected_cells=len(cells) if self.shard is not None else None,
            expected_runtime_cells=(
                len(runtime_cells) if self.shard is not None else None
            ),
        )
        if self.shard is not None and result.complete:
            # Flush our shard journal, then merge if every shard is done.
            # Each finishing shard attempts this; the last one succeeds, and
            # concurrent attempts are harmless (identical bytes, atomic
            # replace).
            if self._journal is not None:
                self._journal.flush()
            assert self.directory is not None
            result.merged_journal = maybe_merge_shard_journals(
                self.directory, self.spec
            )
        return result

    # -- the journal -------------------------------------------------------------

    def _record(self, cell: CampaignCell, values: CellValues) -> None:
        key = cell.key()
        if key in self._records:
            return
        self._records[key] = values
        self._journal_line(_schedule_entry_dict(cell, values))

    def _record_runtime(self, cell: RuntimeCell, values: CellValues) -> None:
        key = cell.key()
        if key in self._runtime_records:
            return
        self._runtime_records[key] = values
        self._journal_line(_runtime_entry_dict(cell, values))

    def _journal_line(self, entry: Dict) -> None:
        if self.directory is None:
            return
        if self._journal is None:
            self._journal = open(
                self.directory / self._journal_filename, "a", encoding="utf-8"
            )
        self._journal.write(canonical_json(entry) + "\n")
        self._journal.flush()

    def _load_journal(self) -> None:
        assert self.directory is not None
        path = self.directory / self._journal_filename
        if not path.exists():
            return
        # A write cut short by an interrupt leaves a torn trailing line with
        # no newline; truncate it away *before* appending anything, or the
        # recomputed record would merge into the fragment and corrupt the
        # journal permanently.
        with open(path, "r+", encoding="utf-8") as handle:
            content = handle.read()
            if content and not content.endswith("\n"):
                keep = content.rfind("\n") + 1
                handle.seek(keep)
                handle.truncate()
        schedule_records, runtime_records = read_campaign_journal_full(path)
        self._records.update(schedule_records)
        self._runtime_records.update(runtime_records)

    def _write_spec(self) -> None:
        """Persist the spec payload next to the journal (humans + ``report``)."""
        assert self.directory is not None
        path = self.directory / CAMPAIGN_SPEC_FILENAME
        if path.exists():
            return
        atomic_write_json(path, self.spec.to_dict(), indent=2)


def run_campaign(
    spec: CampaignSpec,
    *,
    artifact_dir: Optional[Union[str, Path]] = None,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    cache_backend: Optional[str] = None,
    shard: Optional[Tuple[int, int]] = None,
    service: Optional[SchedulingService] = None,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[_Progress], None]] = None,
    timings: bool = False,
) -> CampaignResult:
    """One-call convenience wrapper: construct a runner, run, close."""
    with CampaignRunner(
        spec,
        artifact_dir=artifact_dir,
        n_workers=n_workers,
        cache_dir=cache_dir,
        cache_backend=cache_backend,
        shard=shard,
        service=service,
        timings=timings,
    ) as runner:
        return runner.run(max_cells=max_cells, progress=progress)


def read_campaign_journal_full(
    path: Union[str, Path],
) -> Tuple[Dict[CellKey, CellValues], Dict[RuntimeCellKey, CellValues]]:
    """Parse a ``campaign.jsonl`` journal; unreadable lines are skipped.

    Returns ``(schedule_records, runtime_records)`` — lines carrying an
    ``"x"`` (execution model) field are run-time cells.  Purely read-only
    (no truncation, no directory creation) — the runner layers its torn-tail
    repair on top before it appends.
    """
    records: Dict[CellKey, CellValues] = {}
    runtime_records: Dict[RuntimeCellKey, CellValues] = {}
    path = Path(path)
    if not path.exists():
        return records, runtime_records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                utilisation = entry["u"]
                utilisation = float(utilisation) if utilisation is not None else None
                values = dict(entry["v"])
                if "x" in entry:
                    runtime_key: RuntimeCellKey = (
                        str(entry["sc"]),
                        str(entry["m"]),
                        str(entry["x"]),
                        utilisation,
                        int(entry["i"]),
                        int(entry["r"]),
                    )
                else:
                    key: CellKey = (
                        str(entry["sc"]),
                        str(entry["m"]),
                        utilisation,
                        int(entry["i"]),
                        int(entry["r"]),
                    )
            except (ValueError, KeyError, TypeError):
                # A truncated/corrupt line: almost certainly the final write
                # of an interrupted run.  The cell will be recomputed.
                continue
            if "x" in entry:
                runtime_records[runtime_key] = values
            else:
                records[key] = values
    return records, runtime_records


def read_campaign_journal(path: Union[str, Path]) -> Dict[CellKey, CellValues]:
    """The schedule-cell records of a journal (see :func:`read_campaign_journal_full`)."""
    return read_campaign_journal_full(path)[0]


def load_campaign_records(
    artifact_dir: Union[str, Path], spec: CampaignSpec
) -> Tuple[Dict[CellKey, CellValues], Dict[RuntimeCellKey, CellValues]]:
    """Read a campaign's journalled cells without running (or writing) anything.

    Returns ``(schedule_records, runtime_records)``.  Deliberately does *not*
    construct a runner: reporting on a campaign that was never executed must
    not leave a phantom artifact directory behind.
    """
    return read_campaign_journal_full(
        Path(artifact_dir) / spec.content_key() / CAMPAIGN_JOURNAL_FILENAME
    )


# -- shard journal merge --------------------------------------------------------


def find_shard_journals(directory: Union[str, Path]) -> Tuple[int, Dict[int, Path]]:
    """The shard journals present in one campaign directory.

    Returns ``(n_shards, {shard_index: path})`` with 1-based indices, or
    ``(0, {})`` when no shard journals exist.  Mixing journals from different
    shard totals (say a 2-way and a 4-way split of the same campaign) is a
    :class:`ValueError` — their keyspace ranges overlap, so merging them
    could double-count or miss cells.
    """
    directory = Path(directory)
    journals: Dict[int, Path] = {}
    totals = set()
    for path in sorted(directory.glob("campaign.shard-*.jsonl")):
        match = SHARD_JOURNAL_RE.match(path.name)
        if not match:
            continue
        index, total = int(match.group(1)), int(match.group(2))
        if total < 1 or not 1 <= index <= total:
            raise ValueError(f"nonsensical shard journal name {path.name!r}")
        totals.add(total)
        journals[index] = path
    if len(totals) > 1:
        raise ValueError(
            f"mixed shard totals in {directory}: "
            + ", ".join(sorted(path.name for path in journals.values()))
        )
    return (totals.pop() if totals else 0), journals


def merge_shard_journals(
    directory: Union[str, Path],
    spec: CampaignSpec,
    *,
    require_complete: bool = True,
) -> Path:
    """Reassemble the canonical ``campaign.jsonl`` from shard journals.

    Reads every ``campaign.shard-*.jsonl`` in ``directory`` and rewrites
    the union of their cells in canonical grid order — schedule cells
    first, then run-time cells — through the same entry builders and
    ``canonical_json`` encoding the runner itself uses.  The merged journal
    is therefore **byte-identical** to the one a single-process run of the
    same spec would have written.  The write is atomic (tempfile +
    ``os.replace``), and because every complete merge produces identical
    bytes, concurrent merge attempts by simultaneously-finishing shards are
    race-free.

    With ``require_complete`` (the default) a merge that would drop cells —
    missing shards, or shards that were interrupted mid-run — raises
    :class:`ValueError` instead of writing a partial canonical journal.
    """
    directory = Path(directory)
    n_shards, journals = find_shard_journals(directory)
    if not journals:
        raise ValueError(f"no shard journals found in {directory}")
    records: Dict[CellKey, CellValues] = {}
    runtime_records: Dict[RuntimeCellKey, CellValues] = {}
    for path in journals.values():
        shard_records, shard_runtime_records = read_campaign_journal_full(path)
        records.update(shard_records)
        runtime_records.update(shard_runtime_records)
    missing = sum(1 for cell in spec.cells() if cell.key() not in records) + sum(
        1 for cell in spec.runtime_cells() if cell.key() not in runtime_records
    )
    if missing and require_complete:
        raise ValueError(
            f"cannot merge: {missing} cell(s) missing from the shard journals "
            f"(have shard(s) {sorted(journals)} of {n_shards})"
        )
    target = directory / CAMPAIGN_JOURNAL_FILENAME
    fd, tmp_name = tempfile.mkstemp(
        prefix=CAMPAIGN_JOURNAL_FILENAME + ".", suffix=".tmp", dir=str(directory)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for cell in spec.cells():
                values = records.get(cell.key())
                if values is not None:
                    handle.write(
                        canonical_json(_schedule_entry_dict(cell, values)) + "\n"
                    )
            for runtime_cell in spec.runtime_cells():
                values = runtime_records.get(runtime_cell.key())
                if values is not None:
                    handle.write(
                        canonical_json(_runtime_entry_dict(runtime_cell, values))
                        + "\n"
                    )
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def maybe_merge_shard_journals(
    directory: Union[str, Path], spec: CampaignSpec
) -> Optional[Path]:
    """Merge the shard journals if their union covers the full grid.

    Returns the canonical journal's path, or ``None`` while shards are still
    missing or incomplete.  This is what a finishing shard worker calls: every
    worker tries, only the last one (or several at once, harmlessly) succeeds.
    """
    try:
        return merge_shard_journals(directory, spec)
    except ValueError:
        return None
