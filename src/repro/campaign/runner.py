"""``CampaignRunner`` — execute a campaign grid with checkpointed resume.

The runner expands a :class:`~repro.campaign.spec.CampaignSpec` into
:class:`~repro.service.ScheduleRequest` cells and streams them through one
shared :class:`~repro.service.SchedulingService` — reusing its worker pool,
in-batch dedup and content-addressed schedule cache — while checkpointing
every finished cell to a ``campaign.jsonl`` journal under a directory keyed
by the campaign's content key (the same discipline as
:class:`repro.experiments.artifacts.ArtifactStore`).  An interrupted campaign
re-launched with the same spec therefore resumes with **zero** recomputed
cells, and because cells are journalled in the spec's canonical grid order,
the journal — and any report built from it — is byte-identical at every
worker count.

Determinism chain: a cell's scenario + system index materialise a
deterministic system (:func:`repro.scenario.materialize`); the service's
``execute_request`` is pure in the request (stochastic methods get
content-derived seeds); replications of stochastic methods decorrelate
through a seed derived from the cell's own coordinates.  Nothing anywhere
depends on wall clock, process identity or worker count.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.analysis import max_response_time
from repro.campaign.report import CampaignReport
from repro.campaign.spec import CampaignCell, CampaignSpec, RuntimeCell
from repro.core.serialization import atomic_write_json, canonical_json, content_hash
from repro.runtime import SimulationRequest, SimulationResponse, SimulationService
from repro.scenario import Scenario
from repro.service import ScheduleRequest, ScheduleResponse, SchedulerSpec, SchedulingService
from repro.service.service import DERIVED_SEED_METHODS

CAMPAIGN_JOURNAL_FILENAME = "campaign.jsonl"
CAMPAIGN_SPEC_FILENAME = "campaign.json"

#: Journal/lookup key of one cell; mirrors :meth:`CampaignCell.key`.
CellKey = Tuple[str, str, Optional[float], int, int]

#: Journal/lookup key of one run-time cell; mirrors :meth:`RuntimeCell.key`.
RuntimeCellKey = Tuple[str, str, str, Optional[float], int, int]

#: Per-cell metric values, keyed by metric name (bools stored as bools).
CellValues = Dict[str, Union[bool, float]]


# -- cell -> request translation (pure functions) -------------------------------


def cell_scenario(spec: CampaignSpec, cell: CampaignCell) -> Scenario:
    """The concrete scenario of one cell (utilisation pinned when swept)."""
    scenario = spec.scenario_by_name(cell.scenario)
    if cell.utilisation is not None:
        scenario = scenario.with_utilisation(cell.utilisation)
    return scenario


def replication_seed(scenario: Scenario, cell: CampaignCell) -> int:
    """Deterministic RNG seed decorrelating one stochastic replication.

    Derived from the cell's full coordinates (scenario content, method,
    utilisation, system index, replication), so replications of the same cell
    draw independent streams while the whole grid stays a pure function of
    the spec.
    """
    return int(
        content_hash(
            {
                "purpose": "campaign-replication-seed",
                "scenario": scenario.content_key(),
                "method": cell.method,
                "system_index": cell.system_index,
                "replication": cell.replication,
            }
        ),
        16,
    )


def cell_request(spec: CampaignSpec, cell: CampaignCell) -> ScheduleRequest:
    """Build the :class:`ScheduleRequest` one cell submits to the service.

    Replication 0 issues the plain request — content-identical to a direct
    service call for the same scenario/method, so campaign cells and ad-hoc
    batches share schedule-cache entries.  Later replications pin a derived
    seed on stochastic methods (:data:`DERIVED_SEED_METHODS`) that do not pin
    one themselves; deterministic methods replicate to content-identical
    requests, which the service dedups for free (their variance is genuinely
    zero).
    """
    scenario = cell_scenario(spec, cell)
    method = SchedulerSpec.parse(cell.method)
    if (
        cell.replication > 0
        and method.name in DERIVED_SEED_METHODS
        and method.options_dict().get("seed") is None
    ):
        method = method.with_options(seed=replication_seed(scenario, cell))
    return ScheduleRequest(
        scenario=scenario,
        system_index=cell.system_index,
        spec=method,
        request_id=(
            f"{spec.name}/{cell.scenario}/{cell.method}"
            f"/u={cell.utilisation}/i={cell.system_index}/r={cell.replication}"
        ),
    )


def runtime_cell_request(spec: CampaignSpec, cell: RuntimeCell) -> SimulationRequest:
    """Build the :class:`SimulationRequest` one run-time cell submits.

    The embedded schedule question (scenario, system index, method — with the
    same replication-seed pinning as :func:`cell_request`) is content-identical
    to the corresponding schedule cell's request, so the simulation reuses the
    schedule the campaign already computed instead of scheduling again.
    """
    if spec.runtime is None:
        raise ValueError("campaign has no runtime section")
    schedule_request = cell_request(spec, cell.schedule_cell())
    return SimulationRequest(
        scenario=schedule_request.scenario,
        system_index=cell.system_index,
        method=schedule_request.spec,
        execution_model=cell.execution_model,
        max_events=spec.runtime.max_events,
        request_id=(
            f"{spec.name}/{cell.scenario}/{cell.method}/x={cell.execution_model}"
            f"/u={cell.utilisation}/i={cell.system_index}/r={cell.replication}"
        ),
    )


def runtime_cell_values(
    spec: CampaignSpec, response: SimulationResponse
) -> CellValues:
    """Extract the runtime section's selected metrics from one simulation."""
    assert spec.runtime is not None
    values: CellValues = {}
    for metric in spec.runtime.metrics:
        value = getattr(response, metric)
        values[metric] = value if isinstance(value, (bool, int)) else float(value)
    return values


def cell_values(
    spec: CampaignSpec,
    request: ScheduleRequest,
    response: ScheduleResponse,
    *,
    analysis_cache: Optional[Dict[Tuple[str, int], float]] = None,
) -> CellValues:
    """Extract the spec's selected metrics from one finished cell.

    ``response_time`` is a workload-difficulty diagnostic — the analytical
    FPS worst case of the materialised system, identical for every method
    and replication of the same (scenario, utilisation, system index) — so
    callers evaluating a grid pass an ``analysis_cache`` keyed by
    ``(scenario content key, system index)`` to analyse each system once
    instead of once per cell.
    """
    values: CellValues = {}
    for metric in spec.metrics:
        if metric == "schedulable":
            values[metric] = bool(response.schedulable)
        elif metric == "response_time":
            cache_key = (request.scenario.content_key(), request.system_index)
            if analysis_cache is not None and cache_key in analysis_cache:
                values[metric] = analysis_cache[cache_key]
            else:
                values[metric] = max_response_time(request.effective_task_set())
                if analysis_cache is not None:
                    analysis_cache[cache_key] = values[metric]
        else:  # psi / upsilon / best_psi / best_upsilon
            values[metric] = float(getattr(response, metric))
    return values


# -- the runner ----------------------------------------------------------------


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` call."""

    spec: CampaignSpec
    #: Every completed cell (resumed + freshly evaluated), by cell key.
    records: Dict[CellKey, CellValues]
    #: Cells evaluated by *this* call (not served from the journal).
    evaluated: int
    #: Cells served from the journal before this call computed anything.
    resumed: int = 0
    #: Every completed run-time cell, by run-time cell key (empty without a
    #: ``runtime`` section).  ``evaluated``/``resumed`` count these too.
    runtime_records: Dict[RuntimeCellKey, CellValues] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return (
            len(self.records) == self.spec.n_cells
            and len(self.runtime_records) == self.spec.n_runtime_cells
        )

    def report(self) -> CampaignReport:
        return CampaignReport.from_records(
            self.spec, self.records, runtime_records=self.runtime_records
        )


@dataclass
class _Progress:
    """Internal accounting handed to progress callbacks."""

    done: int
    total: int
    evaluated: int


class CampaignRunner:
    """Runs one campaign, checkpointing progress for interruption-free resume.

    Parameters
    ----------
    spec:
        The campaign to run.
    artifact_dir:
        Root directory for campaign artifacts.  The runner owns
        ``<artifact_dir>/<spec.content_key()>/`` — the spec payload
        (``campaign.json``), the cell journal (``campaign.jsonl``) — so
        different campaigns can share one root without mixing.  ``None``
        keeps all progress in memory (no resume across processes).
    n_workers:
        Worker processes of the shared scheduling service (1 = in-process).
    cache_dir:
        Optional persistent schedule-cache directory for the service; safe to
        share between concurrent campaign processes (entries are written
        atomically).
    service:
        An existing service to schedule through (its worker pool and cache
        are reused; ``n_workers``/``cache_dir`` are then ignored).  The
        caller keeps ownership and must close it.  Anything with the
        service's ``submit_batch``/``n_workers``/``close`` surface works —
        in particular :class:`~repro.server.RemoteSchedulingService`, which
        rides a running serving daemon.
    simulation:
        Like ``service``, for the run-time side: an existing simulation
        service (or :class:`~repro.server.RemoteSimulationService`) to
        simulate through.  The caller keeps ownership and must close it.
        Without one, a campaign with a runtime section builds its own
        :class:`~repro.runtime.SimulationService` over ``service``.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        artifact_dir: Optional[Union[str, Path]] = None,
        n_workers: int = 1,
        cache_dir: Optional[str] = None,
        service: Optional[SchedulingService] = None,
        simulation: Optional[SimulationService] = None,
    ):
        self.spec = spec
        self.n_workers = n_workers if service is None else service.n_workers
        if service is not None:
            self.service = service
            self._owns_service = False
        else:
            self.service = SchedulingService(n_workers=n_workers, cache_dir=cache_dir)
            self._owns_service = True

        # The simulation side (present only when the spec has a runtime
        # section) schedules through the same SchedulingService, so run-time
        # cells reuse the schedules their schedule cells just computed.
        self.simulation: Optional[SimulationService] = simulation
        self._owns_simulation = simulation is None
        if simulation is None and spec.runtime is not None:
            self.simulation = SimulationService(
                n_workers=self.n_workers, scheduling=self.service
            )

        self.directory: Optional[Path] = None
        self._journal: Optional[io.TextIOWrapper] = None
        self._records: Dict[CellKey, CellValues] = {}
        self._runtime_records: Dict[RuntimeCellKey, CellValues] = {}
        if artifact_dir is not None:
            self.directory = Path(artifact_dir) / spec.content_key()
            self.directory.mkdir(parents=True, exist_ok=True)
            self._write_spec()
            self._load_journal()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self.simulation is not None and self._owns_simulation:
            self.simulation.close()
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- state -------------------------------------------------------------------

    @property
    def completed_cells(self) -> int:
        """Cells already answered by the journal (or earlier runs)."""
        return len(self._records) + len(self._runtime_records)

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        *,
        max_cells: Optional[int] = None,
        progress: Optional[Callable[[_Progress], None]] = None,
    ) -> CampaignResult:
        """Execute every pending cell of the grid (in canonical order).

        ``max_cells`` bounds how many *pending* cells this call evaluates
        (schedule cells first, then run-time cells) — the hook tests use to
        simulate an interrupt mid-grid; a subsequent call picks up exactly
        where this one stopped.  ``progress`` is called after every
        checkpointed chunk.
        """
        cells = list(self.spec.cells())
        runtime_cells = list(self.spec.runtime_cells())
        total = len(cells) + len(runtime_cells)
        resumed = sum(1 for cell in cells if cell.key() in self._records) + sum(
            1 for cell in runtime_cells if cell.key() in self._runtime_records
        )
        pending = [cell for cell in cells if cell.key() not in self._records]
        runtime_pending = [
            cell for cell in runtime_cells if cell.key() not in self._runtime_records
        ]
        if max_cells is not None:
            runtime_pending = runtime_pending[: max(0, max_cells - len(pending))]
            pending = pending[:max_cells]

        evaluated = 0
        # One response-time analysis per distinct system, not per cell.
        analysis_cache: Dict[Tuple[str, int], float] = {}
        # Chunks bound how much work an interrupt can lose while still
        # keeping every worker busy (serial runs checkpoint every cell); the
        # journal content is chunking- (and therefore worker-count-)
        # independent because cells are always processed and appended in
        # canonical grid order.
        chunk_size = 1 if self.n_workers == 1 else self.n_workers * 4
        for start in range(0, len(pending), chunk_size):
            chunk = pending[start : start + chunk_size]
            requests = [cell_request(self.spec, cell) for cell in chunk]
            responses = self.service.submit_batch(requests)
            for cell, request, response in zip(chunk, requests, responses):
                values = cell_values(
                    self.spec, request, response, analysis_cache=analysis_cache
                )
                self._record(cell, values)
                evaluated += 1
            if progress is not None:
                progress(
                    _Progress(
                        done=resumed + evaluated, total=total, evaluated=evaluated
                    )
                )

        # The run-time grid follows the schedule grid, so every simulation's
        # embedded schedule question is already cached when it runs.
        for start in range(0, len(runtime_pending), chunk_size):
            chunk = runtime_pending[start : start + chunk_size]
            assert self.simulation is not None
            requests = [runtime_cell_request(self.spec, cell) for cell in chunk]
            responses = self.simulation.submit_batch(requests)
            for cell, response in zip(chunk, responses):
                self._record_runtime(cell, runtime_cell_values(self.spec, response))
                evaluated += 1
            if progress is not None:
                progress(
                    _Progress(
                        done=resumed + evaluated, total=total, evaluated=evaluated
                    )
                )

        records = {
            cell.key(): self._records[cell.key()]
            for cell in cells
            if cell.key() in self._records
        }
        runtime_records = {
            cell.key(): self._runtime_records[cell.key()]
            for cell in runtime_cells
            if cell.key() in self._runtime_records
        }
        return CampaignResult(
            spec=self.spec,
            records=records,
            evaluated=evaluated,
            resumed=resumed,
            runtime_records=runtime_records,
        )

    # -- the journal -------------------------------------------------------------

    def _record(self, cell: CampaignCell, values: CellValues) -> None:
        key = cell.key()
        if key in self._records:
            return
        self._records[key] = values
        self._journal_line(
            {
                "sc": cell.scenario,
                "m": cell.method,
                "u": cell.utilisation,
                "i": cell.system_index,
                "r": cell.replication,
                "v": values,
            }
        )

    def _record_runtime(self, cell: RuntimeCell, values: CellValues) -> None:
        key = cell.key()
        if key in self._runtime_records:
            return
        self._runtime_records[key] = values
        # Run-time cells share the journal; the "x" (execution model) field
        # tells the two record shapes apart on load.
        self._journal_line(
            {
                "sc": cell.scenario,
                "m": cell.method,
                "x": cell.execution_model,
                "u": cell.utilisation,
                "i": cell.system_index,
                "r": cell.replication,
                "v": values,
            }
        )

    def _journal_line(self, entry: Dict) -> None:
        if self.directory is None:
            return
        if self._journal is None:
            self._journal = open(
                self.directory / CAMPAIGN_JOURNAL_FILENAME, "a", encoding="utf-8"
            )
        self._journal.write(canonical_json(entry) + "\n")
        self._journal.flush()

    def _load_journal(self) -> None:
        assert self.directory is not None
        path = self.directory / CAMPAIGN_JOURNAL_FILENAME
        if not path.exists():
            return
        # A write cut short by an interrupt leaves a torn trailing line with
        # no newline; truncate it away *before* appending anything, or the
        # recomputed record would merge into the fragment and corrupt the
        # journal permanently.
        with open(path, "r+", encoding="utf-8") as handle:
            content = handle.read()
            if content and not content.endswith("\n"):
                keep = content.rfind("\n") + 1
                handle.seek(keep)
                handle.truncate()
        schedule_records, runtime_records = read_campaign_journal_full(path)
        self._records.update(schedule_records)
        self._runtime_records.update(runtime_records)

    def _write_spec(self) -> None:
        """Persist the spec payload next to the journal (humans + ``report``)."""
        assert self.directory is not None
        path = self.directory / CAMPAIGN_SPEC_FILENAME
        if path.exists():
            return
        atomic_write_json(path, self.spec.to_dict(), indent=2)


def run_campaign(
    spec: CampaignSpec,
    *,
    artifact_dir: Optional[Union[str, Path]] = None,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    service: Optional[SchedulingService] = None,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[_Progress], None]] = None,
) -> CampaignResult:
    """One-call convenience wrapper: construct a runner, run, close."""
    with CampaignRunner(
        spec,
        artifact_dir=artifact_dir,
        n_workers=n_workers,
        cache_dir=cache_dir,
        service=service,
    ) as runner:
        return runner.run(max_cells=max_cells, progress=progress)


def read_campaign_journal_full(
    path: Union[str, Path],
) -> Tuple[Dict[CellKey, CellValues], Dict[RuntimeCellKey, CellValues]]:
    """Parse a ``campaign.jsonl`` journal; unreadable lines are skipped.

    Returns ``(schedule_records, runtime_records)`` — lines carrying an
    ``"x"`` (execution model) field are run-time cells.  Purely read-only
    (no truncation, no directory creation) — the runner layers its torn-tail
    repair on top before it appends.
    """
    records: Dict[CellKey, CellValues] = {}
    runtime_records: Dict[RuntimeCellKey, CellValues] = {}
    path = Path(path)
    if not path.exists():
        return records, runtime_records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                utilisation = entry["u"]
                utilisation = float(utilisation) if utilisation is not None else None
                values = dict(entry["v"])
                if "x" in entry:
                    runtime_key: RuntimeCellKey = (
                        str(entry["sc"]),
                        str(entry["m"]),
                        str(entry["x"]),
                        utilisation,
                        int(entry["i"]),
                        int(entry["r"]),
                    )
                else:
                    key: CellKey = (
                        str(entry["sc"]),
                        str(entry["m"]),
                        utilisation,
                        int(entry["i"]),
                        int(entry["r"]),
                    )
            except (ValueError, KeyError, TypeError):
                # A truncated/corrupt line: almost certainly the final write
                # of an interrupted run.  The cell will be recomputed.
                continue
            if "x" in entry:
                runtime_records[runtime_key] = values
            else:
                records[key] = values
    return records, runtime_records


def read_campaign_journal(path: Union[str, Path]) -> Dict[CellKey, CellValues]:
    """The schedule-cell records of a journal (see :func:`read_campaign_journal_full`)."""
    return read_campaign_journal_full(path)[0]


def load_campaign_records(
    artifact_dir: Union[str, Path], spec: CampaignSpec
) -> Tuple[Dict[CellKey, CellValues], Dict[RuntimeCellKey, CellValues]]:
    """Read a campaign's journalled cells without running (or writing) anything.

    Returns ``(schedule_records, runtime_records)``.  Deliberately does *not*
    construct a runner: reporting on a campaign that was never executed must
    not leave a phantom artifact directory behind.
    """
    return read_campaign_journal_full(
        Path(artifact_dir) / spec.content_key() / CAMPAIGN_JOURNAL_FILENAME
    )
