"""The execution module of a controller processor (Phase 3).

Figure 4 of the paper divides the execution module into a global timer, a
synchroniser, a fault-recovery unit and an execution unit (EXU):

* the **synchroniser** watches the global timer and, when a scheduling-table
  entry becomes due, translates the pre-loaded I/O task into executable
  commands by reading the controller memory;
* the **fault-recovery unit** handles run-time exceptions (an I/O request that
  never arrived, a corrupted command sequence) without disturbing the rest of
  the schedule;
* the **EXU** drives the connected I/O device with the translated commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hardware.devices import DeviceOperation, IODevice
from repro.hardware.faults import FaultInjector
from repro.hardware.memory import ControllerMemory, IOCommand
from repro.hardware.scheduling_table import SchedulingTable, TableEntry
from repro.sim.trace import TraceRecorder


@dataclass
class ExecutionRecord:
    """The outcome of executing (or skipping) one scheduled job."""

    entry: TableEntry
    started_at: Optional[int]
    finished_at: Optional[int]
    operations: List[DeviceOperation] = field(default_factory=list)
    skipped: bool = False
    fault: Optional[str] = None

    @property
    def executed(self) -> bool:
        return not self.skipped and self.started_at is not None


class ExecutionUnit:
    """The EXU: drives one I/O device with a translated command sequence."""

    def __init__(self, device: IODevice):
        self.device = device
        self.jobs_executed = 0

    def execute_job(
        self, commands: List[IOCommand], time: int, job_key: Tuple[str, int]
    ) -> Tuple[int, int, List[DeviceOperation]]:
        """Execute the commands back-to-back starting at ``time``.

        Returns ``(start, finish, operations)``.
        """
        if not commands:
            raise ValueError("cannot execute an empty command sequence")
        operations: List[DeviceOperation] = []
        cursor = time
        for command in commands:
            operation = self.device.execute(command, cursor, job_key=job_key)
            operations.append(operation)
            cursor += command.duration
        self.jobs_executed += 1
        return time, cursor, operations


class FaultRecoveryUnit:
    """Detects and recovers from run-time exceptions of one controller processor."""

    #: When a job's enable request has not arrived by its start time:
    #: "skip" keeps the device idle (safe default); "execute" runs the job anyway.
    def __init__(self, missing_request_policy: str = "skip"):
        if missing_request_policy not in ("skip", "execute"):
            raise ValueError("missing_request_policy must be 'skip' or 'execute'")
        self.missing_request_policy = missing_request_policy
        self.faults_detected = 0
        self.jobs_skipped = 0
        self.jobs_forced = 0
        self.log: List[str] = []

    def on_missing_request(self, entry: TableEntry) -> bool:
        """Handle a due entry whose task was never requested; returns True to execute."""
        self.faults_detected += 1
        if self.missing_request_policy == "execute":
            self.jobs_forced += 1
            self.log.append(
                f"missing request for {entry.task_name}[{entry.job_index}] at "
                f"{entry.start_time}: executed anyway"
            )
            return True
        self.jobs_skipped += 1
        self.log.append(
            f"missing request for {entry.task_name}[{entry.job_index}] at "
            f"{entry.start_time}: skipped"
        )
        return False

    def on_corrupted_commands(self, entry: TableEntry) -> bool:
        """A corrupted command sequence must never reach the device."""
        self.faults_detected += 1
        self.jobs_skipped += 1
        self.log.append(
            f"corrupted commands for {entry.task_name}[{entry.job_index}]: skipped"
        )
        return False


class Synchroniser:
    """Triggers the timed execution of due scheduling-table entries."""

    def __init__(
        self,
        table: SchedulingTable,
        memory: ControllerMemory,
        exu: ExecutionUnit,
        fault_recovery: Optional[FaultRecoveryUnit] = None,
        fault_injector: Optional[FaultInjector] = None,
        trace: Optional[TraceRecorder] = None,
        name: str = "synchroniser",
    ):
        self.table = table
        self.memory = memory
        self.exu = exu
        self.fault_recovery = fault_recovery or FaultRecoveryUnit()
        self.fault_injector = fault_injector or FaultInjector()
        self.trace = trace
        self.name = name
        self.records: List[ExecutionRecord] = []

    def execute_due(self, time: int) -> List[ExecutionRecord]:
        """Execute every table entry whose start time equals ``time``."""
        new_records: List[ExecutionRecord] = []
        for entry in self.table.due_entries(time):
            record = self._execute_entry(entry, time)
            self.records.append(record)
            new_records.append(record)
        return new_records

    # -- internals -----------------------------------------------------------

    def _execute_entry(self, entry: TableEntry, time: int) -> ExecutionRecord:
        if self.fault_injector.has("corrupted-command", entry.task_name, entry.job_index):
            self.fault_recovery.on_corrupted_commands(entry)
            return self._skipped(entry, fault="corrupted-command")

        if not self.table.is_enabled(entry.task_name):
            if not self.fault_recovery.on_missing_request(entry):
                return self._skipped(entry, fault="missing-request")

        stored = self.memory.retrieve(entry.task_name)
        start, finish, operations = self.exu.execute_job(stored.commands, time, entry.key)
        if self.trace is not None:
            self.trace.record(
                start,
                source=self.name,
                kind="job-start",
                task=entry.task_name,
                job_index=entry.job_index,
                scheduled=entry.start_time,
                finish=finish,
            )
        return ExecutionRecord(
            entry=entry, started_at=start, finished_at=finish, operations=operations
        )

    def _skipped(self, entry: TableEntry, fault: str) -> ExecutionRecord:
        if self.trace is not None:
            self.trace.record(
                entry.start_time,
                source=self.name,
                kind="job-skipped",
                task=entry.task_name,
                job_index=entry.job_index,
                fault=fault,
            )
        return ExecutionRecord(
            entry=entry, started_at=None, finished_at=None, skipped=True, fault=fault
        )
