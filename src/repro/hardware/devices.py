"""Models of the I/O devices attached to the controller processors.

Each device executes primitive I/O commands and records the exact time every
operation started — that record is what the run-time timing-accuracy
measurements are computed from.  A GPIO pin, plus simple UART/SPI/CAN
peripherals, are provided; all share the :class:`IODevice` interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.hardware.memory import IOCommand


@dataclass(frozen=True)
class DeviceOperation:
    """A completed operation on a device."""

    time: int
    opcode: str
    value: int
    duration: int
    job_key: Optional[tuple] = None


class IODevice:
    """Base class: executes commands sequentially and records operations."""

    def __init__(self, name: str):
        self.name = name
        self.operations: List[DeviceOperation] = []
        self._busy_until = 0

    @property
    def busy_until(self) -> int:
        return self._busy_until

    def is_busy(self, time: int) -> bool:
        return time < self._busy_until

    def supported_opcodes(self) -> List[str]:
        """Opcodes this device accepts; subclasses narrow this."""
        return ["read", "write", "set", "clear", "toggle"]

    def execute(self, command: IOCommand, time: int, job_key: Optional[tuple] = None) -> DeviceOperation:
        """Execute one command starting at ``time``.

        Raises ``RuntimeError`` if the device is still busy (the controller's
        per-device partitioning and non-preemptive schedules guarantee this
        never happens when a valid schedule is executed).
        """
        if command.opcode not in self.supported_opcodes():
            raise ValueError(
                f"device {self.name!r} does not support opcode {command.opcode!r}"
            )
        if self.is_busy(time):
            raise RuntimeError(
                f"device {self.name!r} is busy until {self._busy_until}, "
                f"cannot start a command at {time}"
            )
        operation = DeviceOperation(
            time=int(time),
            opcode=command.opcode,
            value=self._apply(command),
            duration=command.duration,
            job_key=job_key,
        )
        self.operations.append(operation)
        self._busy_until = time + command.duration
        return operation

    # -- subclass hooks ---------------------------------------------------------

    def _apply(self, command: IOCommand) -> int:
        """Apply the command to the device state; returns the observed value."""
        return command.value

    # -- introspection ------------------------------------------------------------

    def operation_times(self) -> List[int]:
        return [operation.time for operation in self.operations]

    def first_operation_of(self, job_key: tuple) -> Optional[DeviceOperation]:
        for operation in self.operations:
            if operation.job_key == job_key:
                return operation
        return None


class GPIOPin(IODevice):
    """A single general-purpose I/O pin with set/clear/toggle/read semantics."""

    def __init__(self, name: str, initial_level: int = 0):
        super().__init__(name)
        self.level = initial_level

    def supported_opcodes(self) -> List[str]:
        return ["set", "clear", "toggle", "read", "write"]

    def _apply(self, command: IOCommand) -> int:
        if command.opcode == "set":
            self.level = 1
        elif command.opcode == "clear":
            self.level = 0
        elif command.opcode == "toggle":
            self.level = 1 - self.level
        elif command.opcode == "write":
            self.level = 1 if command.value else 0
        return self.level


class UARTDevice(IODevice):
    """A transmit-only UART model: ``write`` sends one byte per command."""

    def __init__(self, name: str, baud_period: int = 9):
        super().__init__(name)
        self.baud_period = baud_period
        self.transmitted: List[int] = []

    def supported_opcodes(self) -> List[str]:
        return ["write", "read"]

    def _apply(self, command: IOCommand) -> int:
        if command.opcode == "write":
            self.transmitted.append(command.value & 0xFF)
        return command.value & 0xFF


class SPIDevice(IODevice):
    """A full-duplex SPI model: every ``write`` also shifts a byte in."""

    def __init__(self, name: str, response_pattern: int = 0xA5):
        super().__init__(name)
        self.response_pattern = response_pattern
        self.mosi_log: List[int] = []
        self.miso_log: List[int] = []

    def supported_opcodes(self) -> List[str]:
        return ["write", "read"]

    def _apply(self, command: IOCommand) -> int:
        if command.opcode == "write":
            self.mosi_log.append(command.value & 0xFF)
        response = self.response_pattern ^ (command.value & 0xFF)
        self.miso_log.append(response)
        return response


class CANDevice(IODevice):
    """A CAN transceiver model: ``write`` queues a frame identifier."""

    def __init__(self, name: str):
        super().__init__(name)
        self.frames: List[int] = []

    def supported_opcodes(self) -> List[str]:
        return ["write", "read"]

    def _apply(self, command: IOCommand) -> int:
        if command.opcode == "write":
            self.frames.append(command.value)
        return command.value
