"""Controller memory: stores the pre-loaded I/O tasks (Phase 1).

Before run time, the continuous I/O commands of every timed I/O task are
grouped into one I/O operation and written into the controller memory through
the communication channel.  At run time the synchroniser retrieves and
translates them into executable commands for the EXU.  The memory model tracks
its capacity (in KB, like the BRAM budget of Table I) and access counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class MemoryCapacityError(Exception):
    """Raised when pre-loading would exceed the controller-memory capacity."""


@dataclass(frozen=True)
class IOCommand:
    """One primitive I/O command of a timed I/O task.

    ``duration`` is the time the command occupies the I/O device; the sum of a
    task's command durations is its WCET ``C_i``.
    """

    opcode: str
    device: str
    value: int = 0
    duration: int = 1

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("command duration must be positive")
        if not self.opcode:
            raise ValueError("command opcode must be non-empty")

    #: Encoded size of one command in bytes (opcode + device id + value + time).
    ENCODED_SIZE_BYTES: int = 8


@dataclass
class StoredTask:
    """A pre-loaded I/O task: its identifier and command sequence."""

    task_name: str
    commands: List[IOCommand]

    @property
    def size_bytes(self) -> int:
        return len(self.commands) * IOCommand.ENCODED_SIZE_BYTES

    @property
    def duration(self) -> int:
        return sum(command.duration for command in self.commands)


class ControllerMemory:
    """Capacity-bounded storage for pre-loaded I/O tasks."""

    def __init__(self, capacity_kb: int = 32):
        if capacity_kb <= 0:
            raise ValueError("memory capacity must be positive")
        self.capacity_kb = capacity_kb
        self._tasks: Dict[str, StoredTask] = {}
        self.reads = 0
        self.writes = 0

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_kb * 1024

    @property
    def used_bytes(self) -> int:
        return sum(task.size_bytes for task in self._tasks.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def store(self, task_name: str, commands: Sequence[IOCommand]) -> StoredTask:
        """Pre-load the command sequence of one I/O task (Phase 1)."""
        commands = list(commands)
        if not commands:
            raise ValueError(f"task {task_name!r} must have at least one command")
        stored = StoredTask(task_name=task_name, commands=commands)
        existing = self._tasks.get(task_name)
        projected = self.used_bytes - (existing.size_bytes if existing else 0) + stored.size_bytes
        if projected > self.capacity_bytes:
            raise MemoryCapacityError(
                f"storing task {task_name!r} ({stored.size_bytes} B) exceeds the "
                f"{self.capacity_kb} KB controller memory"
            )
        self._tasks[task_name] = stored
        self.writes += 1
        return stored

    def retrieve(self, task_name: str) -> StoredTask:
        """Fetch the commands of a pre-loaded task (used by the synchroniser)."""
        try:
            stored = self._tasks[task_name]
        except KeyError:
            raise KeyError(f"task {task_name!r} has not been pre-loaded") from None
        self.reads += 1
        return stored

    def contains(self, task_name: str) -> bool:
        return task_name in self._tasks

    def task_names(self) -> List[str]:
        return sorted(self._tasks)
