"""Hardware support for the proposed I/O scheduling (Section IV of the paper).

This sub-package models the dedicated I/O controller that executes the
offline schedules at run time:

* :class:`ControllerMemory` — stores the pre-loaded I/O tasks (Phase 1);
* :class:`SchedulingTable` — per-processor table of scheduled start times
  (Phase 2);
* :class:`ControllerProcessor` — request channel, synchroniser, global timer,
  fault-recovery unit, execution unit (EXU) and response channel (Phase 3);
* :class:`IOController` — the complete controller (memory + one processor per
  connected I/O device);
* I/O device models (:mod:`repro.hardware.devices`) that record the actual
  time of every operation, so the run-time timing accuracy can be measured;
* a structural hardware resource estimator (:mod:`repro.hardware.resources`)
  reproducing the shape of Table I.
"""

from repro.hardware.channels import ChannelMessage, RequestChannel, ResponseChannel
from repro.hardware.controller import ControllerRunResult, IOController
from repro.hardware.devices import CANDevice, GPIOPin, IODevice, SPIDevice, UARTDevice
from repro.hardware.execution import ExecutionUnit, FaultRecoveryUnit, Synchroniser
from repro.hardware.faults import FAULT_KINDS, FaultInjector, FaultSpec
from repro.hardware.library import PrimitiveLibrary, ResourceCost
from repro.hardware.memory import ControllerMemory, IOCommand, MemoryCapacityError
from repro.hardware.processor import ControllerProcessor
from repro.hardware.resources import (
    PUBLISHED_TABLE1,
    HardwareDesign,
    ResourceEstimate,
    reference_designs,
)
from repro.hardware.scheduling_table import SchedulingTable, TableEntry
from repro.hardware.timer import GlobalTimer

__all__ = [
    "IOCommand",
    "ControllerMemory",
    "MemoryCapacityError",
    "SchedulingTable",
    "TableEntry",
    "RequestChannel",
    "ResponseChannel",
    "ChannelMessage",
    "GlobalTimer",
    "ExecutionUnit",
    "Synchroniser",
    "FaultRecoveryUnit",
    "ControllerProcessor",
    "IOController",
    "ControllerRunResult",
    "IODevice",
    "GPIOPin",
    "UARTDevice",
    "SPIDevice",
    "CANDevice",
    "FaultInjector",
    "FaultSpec",
    "FAULT_KINDS",
    "ResourceCost",
    "PrimitiveLibrary",
    "HardwareDesign",
    "ResourceEstimate",
    "reference_designs",
    "PUBLISHED_TABLE1",
]
