"""Primitive hardware-component cost library.

The paper evaluates the FPGA cost of its controller (Table I) by synthesising
it with Vivado on a VC709 board.  Without synthesis tooling, this library
provides first-order per-primitive costs (LUTs, flip-flops, DSP slices, BRAM
kilobytes) so that a controller described structurally — as a bag of counters,
comparators, FIFOs, FSMs, memories, … — can be costed.  The per-primitive
numbers are calibrated against the published reference designs (MicroBlaze,
UART/SPI/CAN cores, GPIOCP), so the *relative* costs in Table I are preserved;
see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple


@dataclass(frozen=True)
class ResourceCost:
    """FPGA resource cost of one primitive (or one whole design)."""

    luts: int = 0
    registers: int = 0
    dsps: int = 0
    bram_kb: int = 0

    def __add__(self, other: "ResourceCost") -> "ResourceCost":
        return ResourceCost(
            luts=self.luts + other.luts,
            registers=self.registers + other.registers,
            dsps=self.dsps + other.dsps,
            bram_kb=self.bram_kb + other.bram_kb,
        )

    def scaled(self, count: int) -> "ResourceCost":
        if count < 0:
            raise ValueError("count must be non-negative")
        return ResourceCost(
            luts=self.luts * count,
            registers=self.registers * count,
            dsps=self.dsps * count,
            bram_kb=self.bram_kb * count,
        )

    @classmethod
    def zero(cls) -> "ResourceCost":
        return cls()


#: Default primitive costs (LUTs, FFs, DSPs, BRAM KB).  Values are first-order
#: estimates for a Xilinx 7-series fabric at 32-bit datapath width.
_DEFAULT_PRIMITIVES: Dict[str, ResourceCost] = {
    # sequential / datapath primitives
    "register32": ResourceCost(luts=0, registers=32),
    "counter32": ResourceCost(luts=32, registers=32),
    "timer64": ResourceCost(luts=64, registers=64),
    "adder32": ResourceCost(luts=32, registers=0),
    "comparator32": ResourceCost(luts=16, registers=0),
    "mux32": ResourceCost(luts=16, registers=0),
    "shifter32": ResourceCost(luts=100, registers=0),
    "alu32": ResourceCost(luts=260, registers=0),
    "multiplier32": ResourceCost(luts=40, registers=60, dsps=3),
    "fpu": ResourceCost(luts=900, registers=800, dsps=0),
    # storage / queues
    "fifo16x32": ResourceCost(luts=60, registers=70),
    "fifo64x32": ResourceCost(luts=90, registers=110),
    "regfile32x32": ResourceCost(luts=160, registers=180),
    "lutram_table64": ResourceCost(luts=110, registers=50),
    "bram16kb": ResourceCost(bram_kb=16),
    # control
    "fsm_small": ResourceCost(luts=45, registers=8),
    "fsm_medium": ResourceCost(luts=95, registers=16),
    "fsm_large": ResourceCost(luts=220, registers=40),
    "decoder": ResourceCost(luts=170, registers=24),
    "pipeline_stage": ResourceCost(luts=60, registers=130),
    "interrupt_ctrl": ResourceCost(luts=120, registers=90),
    "bus_interface": ResourceCost(luts=140, registers=110),
    "noc_interface": ResourceCost(luts=150, registers=120),
    # serial protocol engines (calibrated against the published IP-core sizes)
    "uart_engine": ResourceCost(luts=93, registers=85),
    "spi_engine": ResourceCost(luts=334, registers=552),
    "can_engine": ResourceCost(luts=711, registers=604),
    # caches (MicroBlaze full configuration)
    "cache4kb": ResourceCost(luts=350, registers=300, bram_kb=8),
    "mmu": ResourceCost(luts=450, registers=380),
    "branch_predictor": ResourceCost(luts=180, registers=150),
}


class PrimitiveLibrary:
    """A named collection of primitive costs with lookup and composition helpers."""

    def __init__(self, primitives: Mapping[str, ResourceCost] | None = None):
        self._primitives: Dict[str, ResourceCost] = dict(
            primitives if primitives is not None else _DEFAULT_PRIMITIVES
        )

    def __contains__(self, name: str) -> bool:
        return name in self._primitives

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._primitives))

    def cost_of(self, name: str) -> ResourceCost:
        try:
            return self._primitives[name]
        except KeyError:
            raise KeyError(
                f"unknown primitive {name!r}; known primitives: {', '.join(self.names())}"
            ) from None

    def add(self, name: str, cost: ResourceCost) -> None:
        self._primitives[name] = cost

    def total(self, counts: Mapping[str, int]) -> ResourceCost:
        """Cost of a structural description given as ``{primitive: count}``."""
        total = ResourceCost.zero()
        for name, count in counts.items():
            total = total + self.cost_of(name).scaled(count)
        return total
