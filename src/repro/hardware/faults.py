"""Fault injection for the controller's run-time fault-recovery unit.

The synchroniser of the paper's controller processor contains a fault-recovery
unit that handles run-time exceptions — e.g. an I/O request (task enable) that
never arrives — while preserving the correctness of the scheduling behaviour.
The :class:`FaultInjector` lets tests and experiments create those conditions
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: The fault kinds the fault-recovery unit understands.  Public so that
#: declarative layers (fault plans in :mod:`repro.scenario`, CLIs, docs) can
#: validate and enumerate without reaching into :class:`FaultSpec` internals.
FAULT_KINDS: Tuple[str, ...] = ("missing-request", "late-request", "corrupted-command")


@dataclass(frozen=True)
class FaultSpec:
    """Description of one injected fault.

    ``kind`` is validated against :data:`FAULT_KINDS` at construction:

    * ``"missing-request"`` — the enable request for a task is never delivered;
    * ``"late-request"`` — the enable request arrives ``delay`` time units after
      the job's scheduled start;
    * ``"corrupted-command"`` — the stored command sequence of a task reads back
      corrupted and must not be executed.
    """

    kind: str
    task_name: str
    job_index: Optional[int] = None
    delay: int = 0

    _VALID_KINDS = FAULT_KINDS  # backwards-compatible alias

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.delay < 0:
            raise ValueError("fault delay must be non-negative")


class FaultInjector:
    """Holds the set of faults to inject into one simulation run."""

    def __init__(self, faults: Optional[List[FaultSpec]] = None):
        self._faults: List[FaultSpec] = list(faults or [])

    def add(self, fault: FaultSpec) -> None:
        self._faults.append(fault)

    def __len__(self) -> int:
        return len(self._faults)

    def faults_for(self, task_name: str, job_index: Optional[int] = None) -> List[FaultSpec]:
        """Faults applying to a task (and, when given, a specific job index)."""
        selected = []
        for fault in self._faults:
            if fault.task_name != task_name:
                continue
            if fault.job_index is not None and job_index is not None and fault.job_index != job_index:
                continue
            selected.append(fault)
        return selected

    def has(self, kind: str, task_name: str, job_index: Optional[int] = None) -> bool:
        return any(f.kind == kind for f in self.faults_for(task_name, job_index))
