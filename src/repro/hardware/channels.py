"""Request and response channels of a controller processor.

The request channel carries run-time I/O requests from the application
processors to the controller (setting the enable bits in the scheduling
table); the response channel carries results (e.g. read data) back.  Both are
FIFO queues with a fixed transport latency, matching "Port B"/"Port C" of the
controller processor in Figure 4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional


@dataclass(frozen=True)
class ChannelMessage:
    """A message travelling through a channel."""

    sent_at: int
    available_at: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class _FIFOChannel:
    """A latency-modelled FIFO used by both channel directions."""

    def __init__(self, latency: int = 1, capacity: Optional[int] = None):
        if latency < 0:
            raise ValueError("channel latency must be non-negative")
        self.latency = latency
        self.capacity = capacity
        self._queue: Deque[ChannelMessage] = deque()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, time: int, kind: str, **payload: Any) -> Optional[ChannelMessage]:
        """Enqueue a message at ``time``; it becomes visible after the latency.

        Returns the message, or ``None`` if the channel is full (the drop is
        counted — the fault-recovery unit reacts to missing requests).
        """
        if self.capacity is not None and len(self._queue) >= self.capacity:
            self.dropped += 1
            return None
        message = ChannelMessage(
            sent_at=int(time),
            available_at=int(time) + self.latency,
            kind=kind,
            payload=dict(payload),
        )
        self._queue.append(message)
        return message

    def pop_available(self, time: int) -> List[ChannelMessage]:
        """Dequeue every message whose latency has elapsed by ``time`` (FIFO order)."""
        delivered: List[ChannelMessage] = []
        while self._queue and self._queue[0].available_at <= time:
            delivered.append(self._queue.popleft())
        return delivered


class RequestChannel(_FIFOChannel):
    """Carries I/O requests (task enables) towards the controller processor."""


class ResponseChannel(_FIFOChannel):
    """Carries I/O responses (e.g. read data) back to the application CPUs."""
