"""The global timer of the I/O controller.

The controller processors are physically connected to a shared global timer
(Figure 3/4 of the paper); the synchroniser compares the timer value against
the start times stored in the scheduling table to trigger timed executions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GlobalTimer:
    """A free-running timer with a configurable resolution (microseconds/tick)."""

    resolution: int = 1
    value: int = 0

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("timer resolution must be positive")

    def set(self, time: int) -> None:
        """Synchronise the timer to an absolute time (quantised to the resolution)."""
        if time < 0:
            raise ValueError("time must be non-negative")
        self.value = (int(time) // self.resolution) * self.resolution

    def read(self) -> int:
        return self.value

    def ticks_until(self, time: int) -> int:
        """Number of whole ticks from the current value to ``time`` (>= 0)."""
        if time <= self.value:
            return 0
        return -(-(time - self.value) // self.resolution)
