"""The complete I/O controller: controller memory + one processor per device.

The controller realises the three phases of Section IV:

1. **Pre-loading** — :meth:`IOController.preload_taskset` groups the I/O
   commands of every timed I/O task and stores them in the controller memory;
2. **Offline scheduling** — :meth:`IOController.load_system_schedule` stores
   the start times produced by any of the offline schedulers into the
   per-device scheduling tables;
3. **Task execution** — :meth:`IOController.run` executes the schedule on a
   discrete-event simulator; application CPUs enable each task through the
   request channels, the synchronisers trigger the EXUs at the stored start
   times, and the devices record the actual operation times.

:class:`ControllerRunResult` compares the run-time behaviour against the
offline schedule (the dedicated controller reproduces it exactly) and exposes
the achieved Psi/Upsilon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.metrics import aggregate_psi, aggregate_upsilon
from repro.core.schedule import Schedule, ScheduleEntry, SystemSchedule
from repro.core.task import IOJob, IOTask, TaskSet
from repro.hardware.devices import GPIOPin, IODevice
from repro.hardware.faults import FaultInjector
from repro.hardware.memory import ControllerMemory, IOCommand
from repro.hardware.processor import ControllerProcessor
from repro.hardware.timer import GlobalTimer
from repro.sim.engine import Simulator

#: Builds the command sequence of a task; the default is a single GPIO write
#: lasting the task's WCET (the paper groups "continuous I/O commands" into
#: one timed I/O operation).
CommandBuilder = Callable[[IOTask], Sequence[IOCommand]]


def default_command_builder(task: IOTask) -> List[IOCommand]:
    """One ``toggle`` command occupying the device for the task's WCET."""
    return [IOCommand(opcode="toggle", device=task.device, value=1, duration=task.wcet)]


@dataclass
class ControllerRunResult:
    """Run-time outcome of executing an offline schedule on the controller."""

    runtime_schedules: Dict[str, Schedule]
    offline_schedules: Dict[str, Schedule]
    executed_jobs: int
    skipped_jobs: int
    faults_detected: int

    @property
    def psi(self) -> float:
        """Run-time Psi (fraction of jobs started exactly at their ideal times)."""
        return aggregate_psi(self.runtime_schedules.values())

    @property
    def upsilon(self) -> float:
        """Run-time Upsilon of the executed jobs."""
        return aggregate_upsilon(self.runtime_schedules.values())

    @property
    def matches_offline(self) -> bool:
        """True iff every executed job started exactly at its offline start time."""
        for device, runtime in self.runtime_schedules.items():
            offline = self.offline_schedules[device]
            for entry in runtime.entries:
                if entry.job not in offline:
                    return False
                if offline.start_of(entry.job) != entry.start:
                    return False
        return True

    def start_time_deviations(self) -> List[int]:
        """Per-job |runtime start - offline start| (all zeros for the dedicated controller)."""
        deviations: List[int] = []
        for device, runtime in self.runtime_schedules.items():
            offline = self.offline_schedules[device]
            for entry in runtime.entries:
                if entry.job in offline:
                    deviations.append(abs(entry.start - offline.start_of(entry.job)))
        return deviations


class IOController:
    """The dedicated I/O controller of the paper, at functional simulation level."""

    def __init__(
        self,
        memory_kb: int = 32,
        *,
        command_builder: CommandBuilder = default_command_builder,
        request_latency: int = 1,
        response_latency: int = 1,
        missing_request_policy: str = "skip",
        timer_resolution: int = 1,
        fault_injector: Optional[FaultInjector] = None,
        device_factory: Optional[Callable[[str], IODevice]] = None,
    ):
        self.memory = ControllerMemory(capacity_kb=memory_kb)
        self.command_builder = command_builder
        self.request_latency = request_latency
        self.response_latency = response_latency
        self.missing_request_policy = missing_request_policy
        self.timer_resolution = timer_resolution
        self.fault_injector = fault_injector or FaultInjector()
        self.device_factory = device_factory or (lambda name: GPIOPin(name))
        self.processors: Dict[str, ControllerProcessor] = {}
        self._tasks: Dict[str, IOTask] = {}
        self._jobs_by_key: Dict[tuple, IOJob] = {}

    # -- phase 1 ----------------------------------------------------------------

    def preload_taskset(self, task_set: TaskSet) -> None:
        """Store every task's command sequence in the controller memory."""
        for task in task_set:
            commands = list(self.command_builder(task))
            total = sum(command.duration for command in commands)
            if total != task.wcet:
                raise ValueError(
                    f"command sequence of task {task.name!r} lasts {total} but its "
                    f"WCET is {task.wcet}"
                )
            self.memory.store(task.name, commands)
            self._tasks[task.name] = task
            self._ensure_processor(task.device)

    def _ensure_processor(self, device_name: str) -> ControllerProcessor:
        if device_name not in self.processors:
            self.processors[device_name] = ControllerProcessor(
                device=self.device_factory(device_name),
                memory=self.memory,
                request_latency=self.request_latency,
                response_latency=self.response_latency,
                fault_injector=self.fault_injector,
                missing_request_policy=self.missing_request_policy,
                timer=GlobalTimer(resolution=self.timer_resolution),
            )
        return self.processors[device_name]

    # -- phase 2 ----------------------------------------------------------------

    def load_system_schedule(self, schedules: Dict[str, Schedule]) -> None:
        """Store the offline scheduling decisions into the per-device tables."""
        self._offline: Dict[str, Schedule] = {}
        for device, schedule in schedules.items():
            processor = self._ensure_processor(device)
            processor.load_schedule(schedule)
            self._offline[device] = schedule.copy()
            for entry in schedule.entries:
                self._jobs_by_key[entry.job.key] = entry.job

    # -- phase 3 ----------------------------------------------------------------

    def run(
        self,
        simulator: Optional[Simulator] = None,
        horizon: Optional[int] = None,
        *,
        auto_request: bool = True,
        request_jobs: Optional[Sequence[IOJob]] = None,
        max_events: Optional[int] = None,
    ) -> ControllerRunResult:
        """Execute the loaded schedule and measure the run-time timing accuracy.

        With ``auto_request`` (default) the application CPUs are modelled as
        enabling every scheduled task through the request channel at the
        release time of its first job; ``request_jobs`` can restrict requests
        to a subset (jobs of un-requested tasks are then handled by the
        fault-recovery unit).  ``max_events`` bounds the simulation (forwarded
        to :meth:`Simulator.run`); a run cut short by it leaves
        ``simulator.exhausted`` set.
        """
        if not hasattr(self, "_offline"):
            raise RuntimeError("load_system_schedule() must be called before run()")
        simulator = simulator or Simulator()

        if auto_request:
            requested = request_jobs
            if requested is None:
                requested = [
                    entry.job
                    for schedule in self._offline.values()
                    for entry in schedule.entries
                ]
            for job in requested:
                processor = self.processors[job.device]
                send_at = job.release - self.request_latency
                if send_at < 0:
                    # The request would have to be sent before the simulation
                    # starts; model it as already delivered (the application
                    # enabled the task during system start-up).
                    processor.table.enable(job.task.name)
                else:
                    processor.send_request(send_at, job.task.name)

        for processor in self.processors.values():
            processor.attach(simulator)

        if horizon is None:
            horizon = max(
                (schedule.makespan for schedule in self._offline.values()), default=0
            )
        simulator.run(until=horizon, max_events=max_events)

        return self._collect_results()

    # -- results --------------------------------------------------------------------

    def _collect_results(self) -> ControllerRunResult:
        runtime: Dict[str, Schedule] = {}
        executed = 0
        skipped = 0
        faults = 0
        for device, processor in self.processors.items():
            schedule = Schedule(device=device)
            for record in processor.records:
                if record.executed:
                    job = self._jobs_by_key.get(record.entry.key)
                    if job is not None:
                        schedule.add(ScheduleEntry(job=job, start=record.started_at))
                    executed += 1
                else:
                    skipped += 1
            runtime[device] = schedule
            faults += processor.fault_recovery.faults_detected
        return ControllerRunResult(
            runtime_schedules=runtime,
            offline_schedules=dict(self._offline),
            executed_jobs=executed,
            skipped_jobs=skipped,
            faults_detected=faults,
        )
