"""A controller processor: one per connected I/O device (Figure 4).

The processor bundles the scheduling table, the request and response channels,
the global timer and the execution module (synchroniser + fault recovery +
EXU).  It registers one simulation event per scheduling-table entry; when the
event fires it first drains the request channel (setting enable bits) and then
lets the synchroniser execute the due entries on the device.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.schedule import Schedule
from repro.hardware.channels import RequestChannel, ResponseChannel
from repro.hardware.devices import IODevice
from repro.hardware.execution import ExecutionRecord, ExecutionUnit, FaultRecoveryUnit, Synchroniser
from repro.hardware.faults import FaultInjector
from repro.hardware.memory import ControllerMemory
from repro.hardware.scheduling_table import SchedulingTable, TableEntry
from repro.hardware.timer import GlobalTimer
from repro.sim.engine import Simulator


class ControllerProcessor:
    """The per-device processing element of the I/O controller."""

    def __init__(
        self,
        device: IODevice,
        memory: ControllerMemory,
        *,
        table_capacity: int = 4096,
        request_latency: int = 1,
        response_latency: int = 1,
        fault_injector: Optional[FaultInjector] = None,
        missing_request_policy: str = "skip",
        timer: Optional[GlobalTimer] = None,
    ):
        self.device = device
        self.memory = memory
        self.table = SchedulingTable(capacity=table_capacity)
        self.request_channel = RequestChannel(latency=request_latency)
        self.response_channel = ResponseChannel(latency=response_latency)
        self.timer = timer or GlobalTimer()
        self.fault_recovery = FaultRecoveryUnit(missing_request_policy=missing_request_policy)
        self.exu = ExecutionUnit(device)
        self.fault_injector = fault_injector or FaultInjector()
        self.synchroniser: Optional[Synchroniser] = None

    # -- phase 2: offline schedule loading --------------------------------------

    def load_schedule(self, schedule: Schedule) -> None:
        """Store the offline scheduling decisions for this device's partition."""
        for entry in schedule.sorted_entries():
            self.table.load(
                TableEntry(
                    task_name=entry.job.task.name,
                    job_index=entry.job.index,
                    start_time=entry.start,
                )
            )

    # -- phase 3: run-time execution -----------------------------------------------

    def attach(self, simulator: Simulator) -> None:
        """Register the timed-execution events of every table entry."""
        self.synchroniser = Synchroniser(
            table=self.table,
            memory=self.memory,
            exu=self.exu,
            fault_recovery=self.fault_recovery,
            fault_injector=self.fault_injector,
            trace=simulator.trace,
            name=f"processor:{self.device.name}",
        )
        start_times = sorted({entry.start_time for entry in self.table.entries()})
        for start_time in start_times:
            simulator.at(
                start_time,
                lambda t=start_time: self._on_trigger(t),
                label=f"{self.device.name}@{start_time}",
            )

    def send_request(self, time: int, task_name: str) -> None:
        """An application CPU requests (enables) a pre-loaded task at ``time``."""
        self.request_channel.push(time, kind="io-request", task=task_name)

    def _on_trigger(self, time: int) -> None:
        self.timer.set(time)
        for message in self.request_channel.pop_available(time):
            self.table.enable(message.payload["task"])
        assert self.synchroniser is not None, "attach() must be called before running"
        for record in self.synchroniser.execute_due(time):
            if record.executed:
                self.response_channel.push(
                    record.finished_at,
                    kind="io-response",
                    task=record.entry.task_name,
                    job_index=record.entry.job_index,
                    values=[operation.value for operation in record.operations],
                )

    # -- results -------------------------------------------------------------------

    @property
    def records(self) -> List[ExecutionRecord]:
        return list(self.synchroniser.records) if self.synchroniser is not None else []
