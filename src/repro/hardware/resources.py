"""Structural hardware-resource estimation (reproduction of Table I).

The paper synthesises its controller and several reference designs on a Xilinx
VC709 and reports LUTs, registers, DSPs, BRAM and power.  Synthesis tooling is
not available offline, so each design is described *structurally* — as counts
of the primitives in :mod:`repro.hardware.library` — and costed by summing the
primitive costs.  Power uses a first-order activity model
``P = f_clk * activity * (LUT + 0.6 FF + 15 DSP + 8 BRAM_KB) / 1000`` with a
per-design activity factor (CPUs toggle far more than event-driven I/O
controllers).  The primitive costs and activities are calibrated against the
published reference designs, so the reproduced table preserves the *relative*
resource efficiency the paper claims; the published values are also exported
(:data:`PUBLISHED_TABLE1`) so experiments can report model-vs-paper side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.hardware.library import PrimitiveLibrary, ResourceCost

#: Table I of the paper (published values): LUTs, registers, DSPs, RAM (KB), power (mW).
PUBLISHED_TABLE1: Dict[str, Dict[str, float]] = {
    "proposed": {"luts": 1156, "registers": 982, "dsps": 0, "bram_kb": 32, "power_mw": 11},
    "microblaze-basic": {"luts": 854, "registers": 529, "dsps": 0, "bram_kb": 16, "power_mw": 127},
    "microblaze-full": {"luts": 4908, "registers": 4385, "dsps": 6, "bram_kb": 128, "power_mw": 238},
    "uart": {"luts": 93, "registers": 85, "dsps": 0, "bram_kb": 0, "power_mw": 1},
    "spi": {"luts": 334, "registers": 552, "dsps": 0, "bram_kb": 0, "power_mw": 4},
    "can": {"luts": 711, "registers": 604, "dsps": 0, "bram_kb": 0, "power_mw": 5},
    "gpiocp": {"luts": 886, "registers": 645, "dsps": 0, "bram_kb": 16, "power_mw": 7},
}

#: Power-model coefficients (µW per element per MHz per unit activity).
_POWER_WEIGHT_LUT = 1.0
_POWER_WEIGHT_FF = 0.6
_POWER_WEIGHT_DSP = 15.0
_POWER_WEIGHT_BRAM_KB = 8.0


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated implementation cost of one design."""

    name: str
    luts: int
    registers: int
    dsps: int
    bram_kb: int
    power_mw: float

    def as_row(self) -> Dict[str, float]:
        return {
            "luts": self.luts,
            "registers": self.registers,
            "dsps": self.dsps,
            "bram_kb": self.bram_kb,
            "power_mw": round(self.power_mw, 1),
        }


@dataclass(frozen=True)
class HardwareDesign:
    """A structural description of a hardware design plus its operating point."""

    name: str
    primitives: Mapping[str, int]
    clock_mhz: float = 100.0
    activity: float = 0.05
    description: str = ""

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        if not 0 < self.activity <= 1.0:
            raise ValueError("activity must lie in (0, 1]")
        for name, count in self.primitives.items():
            if count < 0:
                raise ValueError(f"primitive count for {name!r} must be non-negative")

    def cost(self, library: Optional[PrimitiveLibrary] = None) -> ResourceCost:
        library = library or PrimitiveLibrary()
        return library.total(dict(self.primitives))

    def estimate(self, library: Optional[PrimitiveLibrary] = None) -> ResourceEstimate:
        cost = self.cost(library)
        weighted = (
            cost.luts * _POWER_WEIGHT_LUT
            + cost.registers * _POWER_WEIGHT_FF
            + cost.dsps * _POWER_WEIGHT_DSP
            + cost.bram_kb * _POWER_WEIGHT_BRAM_KB
        )
        power_mw = self.clock_mhz * self.activity * weighted / 1000.0
        return ResourceEstimate(
            name=self.name,
            luts=cost.luts,
            registers=cost.registers,
            dsps=cost.dsps,
            bram_kb=cost.bram_kb,
            power_mw=power_mw,
        )


def proposed_controller_design(n_processors: int = 1, memory_kb: int = 32) -> HardwareDesign:
    """The paper's I/O controller: memory + scheduling table + synchroniser + EXU.

    The reference implementation of Table I integrates one controller processor
    and a 32 KB controller memory; ``n_processors`` scales the per-device
    processing elements for integration studies (the design is replicated per
    connected I/O device, Section IV).
    """
    per_processor = {
        "lutram_table64": 1,   # scheduling table
        "fifo16x32": 2,        # request + response channels
        "fsm_medium": 1,       # synchroniser control
        "fsm_small": 2,        # fault recovery + EXU sequencing
        "timer64": 1,          # global-timer interface
        "counter32": 1,
        "comparator32": 2,     # start-time matching
        "mux32": 6,
        "register32": 9,
        "decoder": 1,          # command translation
        "fifo64x32": 2,        # command staging to/from memory
    }
    primitives: Dict[str, int] = {"noc_interface": 1, "bram16kb": max(1, memory_kb // 16)}
    for name, count in per_processor.items():
        primitives[name] = count * n_processors
    return HardwareDesign(
        name="proposed",
        primitives=primitives,
        clock_mhz=100.0,
        activity=0.056,
        description="Dedicated I/O controller with offline job-level scheduling support",
    )


def gpiocp_design() -> HardwareDesign:
    """GPIOCP (Jiang & Audsley 2017): pre-loading plus FIFO-ordered execution."""
    return HardwareDesign(
        name="gpiocp",
        primitives={
            "noc_interface": 1,
            "fifo64x32": 2,
            "fsm_medium": 1,
            "fsm_small": 1,
            "decoder": 1,
            "timer64": 1,
            "counter32": 1,
            "comparator32": 2,
            "mux32": 6,
            "register32": 5,
            "bram16kb": 1,
        },
        clock_mhz=100.0,
        activity=0.051,
        description="GPIO command processor with FIFO execution (no scheduler)",
    )


def microblaze_basic_design() -> HardwareDesign:
    """A basic MicroBlaze soft processor (no caches, no FPU)."""
    return HardwareDesign(
        name="microblaze-basic",
        primitives={
            "alu32": 1,
            "regfile32x32": 1,
            "decoder": 1,
            "fsm_medium": 1,
            "bus_interface": 1,
            "comparator32": 2,
            "register32": 6,
            "bram16kb": 1,
        },
        clock_mhz=200.0,
        activity=0.49,
        description="MicroBlaze, basic configuration",
    )


def microblaze_full_design() -> HardwareDesign:
    """A full-featured MicroBlaze (FPU, caches, MMU, branch prediction)."""
    return HardwareDesign(
        name="microblaze-full",
        primitives={
            "alu32": 1,
            "regfile32x32": 1,
            "decoder": 1,
            "fsm_medium": 1,
            "bus_interface": 1,
            "comparator32": 2,
            "register32": 10,
            "fpu": 1,
            "multiplier32": 2,
            "cache4kb": 6,
            "mmu": 1,
            "branch_predictor": 1,
            "interrupt_ctrl": 1,
            "pipeline_stage": 3,
            "bram16kb": 5,
        },
        clock_mhz=200.0,
        activity=0.138,
        description="MicroBlaze, full-featured configuration",
    )


def uart_controller_design() -> HardwareDesign:
    return HardwareDesign(
        name="uart",
        primitives={"uart_engine": 1},
        clock_mhz=100.0,
        activity=0.069,
        description="Plain UART controller IP",
    )


def spi_controller_design() -> HardwareDesign:
    return HardwareDesign(
        name="spi",
        primitives={"spi_engine": 1},
        clock_mhz=100.0,
        activity=0.060,
        description="Plain SPI controller IP",
    )


def can_controller_design() -> HardwareDesign:
    return HardwareDesign(
        name="can",
        primitives={"can_engine": 1},
        clock_mhz=100.0,
        activity=0.047,
        description="Plain CAN controller IP",
    )


def reference_designs() -> Dict[str, HardwareDesign]:
    """All designs of Table I, keyed by the names used in :data:`PUBLISHED_TABLE1`."""
    designs = [
        proposed_controller_design(),
        microblaze_basic_design(),
        microblaze_full_design(),
        uart_controller_design(),
        spi_controller_design(),
        can_controller_design(),
        gpiocp_design(),
    ]
    return {design.name: design for design in designs}


def estimate_all(
    designs: Optional[Mapping[str, HardwareDesign]] = None,
    library: Optional[PrimitiveLibrary] = None,
) -> Dict[str, ResourceEstimate]:
    """Resource estimates of every design (default: the Table I reference set)."""
    designs = designs or reference_designs()
    return {name: design.estimate(library) for name, design in designs.items()}
