"""The scheduling table of a controller processor (Phase 2).

The table records the identifier and start time of every job produced by the
offline scheduling methods, plus a per-task *enable* bit set at run time by
I/O requests arriving through the request channel.  The synchroniser walks the
table in start-time order and triggers the execution of due entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TableEntry:
    """One scheduled job: task identifier, job index and start time."""

    task_name: str
    job_index: int
    start_time: int

    @property
    def key(self) -> Tuple[str, int]:
        return (self.task_name, self.job_index)


class SchedulingTable:
    """A capacity-bounded, start-time-ordered table of scheduled jobs."""

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("table capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[Tuple[str, int], TableEntry] = {}
        self._enabled: Dict[str, bool] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- offline loading ------------------------------------------------------

    def load(self, entry: TableEntry) -> None:
        """Store one scheduling decision (sent from the application processors)."""
        if entry.key not in self._entries and len(self._entries) >= self.capacity:
            raise OverflowError(
                f"scheduling table capacity ({self.capacity} entries) exceeded"
            )
        self._entries[entry.key] = entry
        self._enabled.setdefault(entry.task_name, False)

    def load_many(self, entries) -> None:
        for entry in entries:
            self.load(entry)

    # -- run-time interface -----------------------------------------------------

    def enable(self, task_name: str) -> None:
        """Set the enable bit of a task (an I/O request for it has been received)."""
        self._enabled[task_name] = True

    def disable(self, task_name: str) -> None:
        self._enabled[task_name] = False

    def is_enabled(self, task_name: str) -> bool:
        return self._enabled.get(task_name, False)

    def entries(self) -> List[TableEntry]:
        """All entries ordered by start time."""
        return sorted(self._entries.values(), key=lambda e: (e.start_time, e.key))

    def entries_for(self, task_name: str) -> List[TableEntry]:
        return [entry for entry in self.entries() if entry.task_name == task_name]

    def due_entries(self, time: int) -> List[TableEntry]:
        """Entries whose start time equals ``time`` (to be triggered now)."""
        return [entry for entry in self.entries() if entry.start_time == time]

    def next_start_after(self, time: int) -> Optional[int]:
        """The earliest start time strictly greater than ``time``, if any."""
        future = [entry.start_time for entry in self._entries.values() if entry.start_time > time]
        return min(future) if future else None
