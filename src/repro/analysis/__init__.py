"""Schedulability analysis for non-preemptive fixed-priority I/O scheduling.

Provides the analytical worst-case response-time test used for the paper's
"FPS-online" baseline (Figure 5), which follows the classic non-preemptive
fixed-priority analysis with blocking from lower-priority jobs (Davis et al.,
"Controller Area Network (CAN) schedulability analysis", the paper's [18]).
"""

from repro.analysis.response_time import (
    ResponseTimeResult,
    blocking_time,
    max_response_time,
    response_time,
    response_time_analysis,
)
from repro.analysis.schedulability import (
    FPSOnlineTest,
    is_schedulable_fps_online,
    necessary_utilisation_test,
)

__all__ = [
    "blocking_time",
    "max_response_time",
    "response_time",
    "response_time_analysis",
    "ResponseTimeResult",
    "FPSOnlineTest",
    "is_schedulable_fps_online",
    "necessary_utilisation_test",
]
