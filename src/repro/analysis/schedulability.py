"""System-level schedulability tests.

``FPSOnlineTest`` is the paper's "FPS-online" baseline: a task set is deemed
schedulable iff every task passes the non-preemptive fixed-priority
response-time test on its device partition.  A necessary utilisation test is
also provided (every partition must have utilisation <= 1), used as a fast
pre-filter by several schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.response_time import ResponseTimeResult, response_time_analysis
from repro.core.task import TaskSet


def necessary_utilisation_test(task_set: TaskSet) -> bool:
    """Necessary condition: every per-device partition has utilisation <= 1."""
    return all(
        partition.utilisation <= 1.0 + 1e-12
        for partition in task_set.partition().values()
    )


@dataclass
class FPSOnlineResult:
    """Detailed outcome of the FPS-online schedulability test."""

    schedulable: bool
    per_task: Dict[str, ResponseTimeResult] = field(default_factory=dict)

    @property
    def failing_tasks(self) -> List[str]:
        return [name for name, result in self.per_task.items() if not result.schedulable]


class FPSOnlineTest:
    """Analytical worst case of a dynamic non-preemptive FPS schedule.

    This corresponds to the "FPS-online" curve in Figure 5 of the paper: the
    run-time fixed-priority scheduler suffers blocking from already-started
    lower-priority I/O jobs, so its worst-case schedulability is below that of
    the offline (clairvoyant) FPS schedule.
    """

    name = "fps-online"

    def analyse(self, task_set: TaskSet) -> FPSOnlineResult:
        if len(task_set) == 0:
            return FPSOnlineResult(schedulable=True)
        if not necessary_utilisation_test(task_set):
            return FPSOnlineResult(schedulable=False)
        per_task = response_time_analysis(task_set)
        schedulable = all(result.schedulable for result in per_task.values())
        return FPSOnlineResult(schedulable=schedulable, per_task=per_task)

    def is_schedulable(self, task_set: TaskSet) -> bool:
        return self.analyse(task_set).schedulable


def is_schedulable_fps_online(task_set: TaskSet) -> bool:
    """Convenience wrapper around :class:`FPSOnlineTest`."""
    return FPSOnlineTest().is_schedulable(task_set)
