"""Worst-case response-time analysis for non-preemptive fixed-priority scheduling.

The "FPS-online" baseline of the paper evaluates the worst case of a dynamic
(run-time) non-preemptive fixed-priority schedule using the schedulability
test of Davis et al. (the paper's reference [18]).  For a task ``tau_i`` on a
single I/O device:

* blocking ``B_i`` — the longest lower-priority job that may already occupy
  the (non-preemptable) device when ``tau_i`` is released,
* queueing delay ``w_i`` — the fixed point of
  ``w = B_i + sum_{j in hp(i)} ceil((w + tick) / T_j) * C_j``,
* response time ``R_i = w_i + C_i``; the task is schedulable iff
  ``R_i <= D_i``.

Times are integers (microseconds) and ``tick`` is one time unit, which makes
the analysis exact for the discrete-time model used throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.task import IOTask, TaskSet

#: One discrete time unit (microsecond); plays the role of tau_bit in CAN analysis.
TICK: int = 1


def higher_priority(task: IOTask, tasks: Iterable[IOTask]) -> List[IOTask]:
    """Tasks with strictly higher priority than ``task`` (larger ``P_i``)."""
    return [other for other in tasks if other.priority > task.priority]


def lower_priority(task: IOTask, tasks: Iterable[IOTask]) -> List[IOTask]:
    """Tasks with strictly lower priority than ``task``."""
    return [other for other in tasks if other.priority < task.priority]


def blocking_time(task: IOTask, tasks: Iterable[IOTask]) -> int:
    """Worst-case blocking ``B_i`` from non-preemptable lower-priority jobs.

    In discrete time the blocking job can have started at most one tick before
    the release of ``task``, hence the ``- TICK`` term (and never below zero).
    """
    lower = lower_priority(task, tasks)
    if not lower:
        return 0
    return max(0, max(other.wcet for other in lower) - TICK)


@dataclass(frozen=True)
class ResponseTimeResult:
    """Outcome of the response-time analysis for one task."""

    task: IOTask
    blocking: int
    queueing_delay: int
    response_time: int
    schedulable: bool
    converged: bool


def response_time(
    task: IOTask,
    tasks: Iterable[IOTask],
    *,
    max_iterations: int = 10_000,
) -> ResponseTimeResult:
    """Worst-case response time of ``task`` among ``tasks`` on one device."""
    task_list = list(tasks)
    b_i = blocking_time(task, task_list)
    hp = higher_priority(task, task_list)

    w = b_i
    converged = False
    for _ in range(max_iterations):
        interference = 0
        for other in hp:
            # ceil((w + TICK) / T_j) releases of tau_j can delay the start.
            interference += -(-(w + TICK) // other.period) * other.wcet
        w_next = b_i + interference
        if w_next == w:
            converged = True
            break
        w = w_next
        if w + task.wcet > task.deadline:
            # The recurrence is monotonically non-decreasing; once the deadline
            # is exceeded the task is unschedulable and iteration can stop.
            break

    r = w + task.wcet
    return ResponseTimeResult(
        task=task,
        blocking=b_i,
        queueing_delay=w,
        response_time=r,
        schedulable=converged and r <= task.deadline,
        converged=converged,
    )


def max_response_time(task_set: TaskSet) -> float:
    """The largest analysed worst-case response time across all tasks (µs).

    A single scalar "how hard is this system" diagnostic used by campaign
    reports.  Tasks whose recurrence did not converge contribute the (finite)
    response time at which the iteration stopped — a lower bound on their true
    worst case — so the result is always finite and JSON-representable.
    Empty task sets yield ``0.0``.
    """
    results = response_time_analysis(task_set)
    if not results:
        return 0.0
    return float(max(result.response_time for result in results.values()))


def response_time_analysis(task_set: TaskSet) -> Dict[str, ResponseTimeResult]:
    """Response-time analysis of every task, per-device (fully-partitioned).

    Returns a mapping from task name to its :class:`ResponseTimeResult`.
    Interference and blocking are only counted from tasks sharing the same
    I/O device, matching the partitioned scheduling model.
    """
    results: Dict[str, ResponseTimeResult] = {}
    for device, partition in task_set.partition().items():
        members = partition.tasks
        for task in members:
            results[task.name] = response_time(task, members)
    return results
