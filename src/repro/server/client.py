"""Client side of the serving daemon: sync + async, and service adapters.

:class:`ServerClient` is the synchronous client — one TCP connection, typed
helpers per op, and a windowed-pipelining batch engine
(:meth:`~ServerClient.submit_envelopes`) that keeps a bounded number of
requests in flight, matches out-of-order answers by tag, and transparently
waits out ``overloaded`` rejections using the server's ``retry_after_s``
hint.  :class:`AsyncServerClient` is its asyncio twin: any number of
concurrent ``await``-ed calls share one connection, demultiplexed by a
background reader task.

:class:`RemoteSchedulingService` / :class:`RemoteSimulationService` dress a
client connection up as the corresponding in-process service (``n_workers``,
``submit``/``submit_batch``, ``close``), so anything built against the
services — most notably :class:`~repro.campaign.CampaignRunner` — can ride a
warm daemon instead of spinning up its own pool, without knowing the wire
protocol exists.

Server-reported failures raise :class:`ServerError`, which carries the
structured error envelope's machine-readable ``code``.
"""

from __future__ import annotations

import asyncio
import socket
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.messages import (
    SIM_REQUEST_KIND,
    SimulationRequest,
    SimulationResponse,
)
from repro.server.protocol import (
    ERR_OVERLOADED,
    OP_HEALTH,
    OP_METRICS,
    OP_SCHEDULE,
    OP_SHUTDOWN,
    OP_SIMULATE,
    OP_STATS,
    SERVER_ERROR_KIND,
    decode_answer_line,
    encode_request,
)
from repro.service.messages import (
    REQUEST_KIND as SCHEDULE_REQUEST_KIND,
)
from repro.service.messages import (
    ScheduleRequest,
    ScheduleResponse,
)

#: Default number of requests a batch keeps in flight on one connection.
DEFAULT_WINDOW = 32

#: Upper bound on honouring a single ``retry_after_s`` hint.
MAX_RETRY_SLEEP_S = 30.0

#: Request-envelope kind -> the op that executes it.
_OP_BY_KIND = {
    SCHEDULE_REQUEST_KIND: OP_SCHEDULE,
    SIM_REQUEST_KIND: OP_SIMULATE,
}


class ServerError(RuntimeError):
    """A structured error answer from the daemon.

    ``code`` is the machine-readable error code of the ``repro/server-error``
    envelope; ``retry_after_s`` is set for ``overloaded`` rejections.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        tag: Optional[str] = None,
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.tag = tag
        self.retry_after_s = retry_after_s

    @classmethod
    def from_data(cls, data: Dict[str, Any]) -> "ServerError":
        return cls(
            str(data.get("error", "internal")),
            str(data.get("message", "")),
            tag=data.get("tag"),
            retry_after_s=data.get("retry_after_s"),
        )


def _op_for_envelope(envelope: Dict[str, Any]) -> str:
    kind = envelope.get("kind") if isinstance(envelope, dict) else None
    op = _OP_BY_KIND.get(kind)
    if op is None:
        raise ValueError(
            f"cannot send envelope of kind {kind!r} to the server "
            f"(expected one of {', '.join(sorted(_OP_BY_KIND))})"
        )
    return op


class ServerClient:
    """Synchronous client for one :class:`~repro.server.daemon.ReproServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        window: int = DEFAULT_WINDOW,
    ):
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        self.host = host
        self.port = port
        self.window = window
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # One-line request/answer exchanges are latency-bound: don't let
        # Nagle batch them up.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        self._seq = 0

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------------

    def _next_tag(self) -> str:
        self._seq += 1
        return f"c{self._seq}"

    def _read_answer(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_answer_line(line)

    def call(
        self, op: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One op round-trip; returns the answer payload, raises on error."""
        tag = self._next_tag()
        self._sock.sendall(encode_request(op, tag=tag, payload=payload))
        envelope = self._read_answer()
        data = envelope["data"]
        if envelope["kind"] == SERVER_ERROR_KIND:
            raise ServerError.from_data(data)
        return data["payload"]

    # -- batches -----------------------------------------------------------------

    def submit_envelopes(
        self, envelopes: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Pipeline raw request envelopes; answers in input order.

        Each envelope must be a ``repro/schedule-request`` or
        ``repro/sim-request`` payload dict (exactly what the batch CLIs
        read).  At most :attr:`window` requests are outstanding at a time;
        ``overloaded`` rejections sleep out the server's ``retry_after_s``
        hint and requeue, every other error raises :class:`ServerError`.
        Returns the raw answer payloads — ``repro/schedule-response`` /
        ``repro/sim-response`` envelope dicts.
        """
        ops = [_op_for_envelope(envelope) for envelope in envelopes]
        results: List[Optional[Dict[str, Any]]] = [None] * len(envelopes)
        queue = deque(range(len(envelopes)))
        outstanding: Dict[str, int] = {}
        while queue or outstanding:
            while queue and len(outstanding) < self.window:
                index = queue.popleft()
                tag = self._next_tag()
                outstanding[tag] = index
                self._sock.sendall(
                    encode_request(ops[index], tag=tag, payload=envelopes[index])
                )
            envelope = self._read_answer()
            data = envelope["data"]
            index = outstanding.pop(data.get("tag"), None)
            if index is None:
                raise ServerError.from_data(
                    data if envelope["kind"] == SERVER_ERROR_KIND else
                    {"error": "internal", "message": f"unmatched answer tag {data.get('tag')!r}"}
                )
            if envelope["kind"] == SERVER_ERROR_KIND:
                if data.get("error") == ERR_OVERLOADED:
                    # The admission queue is full: honour the back-off hint,
                    # then requeue this request for a later window slot.
                    time.sleep(
                        min(float(data.get("retry_after_s") or 0.1), MAX_RETRY_SLEEP_S)
                    )
                    queue.append(index)
                else:
                    raise ServerError.from_data(data)
            else:
                results[index] = data["payload"]
        return [result for result in results if result is not None]

    # -- typed helpers -----------------------------------------------------------

    def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        return ScheduleResponse.from_dict(self.call(OP_SCHEDULE, request.to_dict()))

    def simulate(self, request: SimulationRequest) -> SimulationResponse:
        return SimulationResponse.from_dict(self.call(OP_SIMULATE, request.to_dict()))

    def schedule_batch(
        self, requests: Sequence[ScheduleRequest]
    ) -> List[ScheduleResponse]:
        answers = self.submit_envelopes([request.to_dict() for request in requests])
        return [ScheduleResponse.from_dict(answer) for answer in answers]

    def simulate_batch(
        self, requests: Sequence[SimulationRequest]
    ) -> List[SimulationResponse]:
        answers = self.submit_envelopes([request.to_dict() for request in requests])
        return [SimulationResponse.from_dict(answer) for answer in answers]

    def stats(self) -> Dict[str, Any]:
        return self.call(OP_STATS)

    def health(self) -> Dict[str, Any]:
        return self.call(OP_HEALTH)

    def metrics(self) -> str:
        """The daemon's metrics in Prometheus text exposition format."""
        return self.call(OP_METRICS)["text"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and exit (requires remote shutdown enabled)."""
        return self.call(OP_SHUTDOWN)


class AsyncServerClient:
    """Asyncio client: concurrent calls multiplexed over one connection.

    Usage::

        async with await AsyncServerClient.connect(host, port) as client:
            first, second = await asyncio.gather(
                client.schedule(request_a), client.schedule(request_b)
            )

    A background reader task routes each answer line to the awaiting caller
    by tag, so any number of coroutines can have calls in flight at once.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._pending: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._seq = 0
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServerClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # -- lifecycle ---------------------------------------------------------------

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "AsyncServerClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- plumbing ----------------------------------------------------------------

    def _fail_pending(self, error: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)
                future.exception()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._fail_pending(ConnectionError("server closed the connection"))
                    return
                envelope = decode_answer_line(line)
                tag = envelope["data"].get("tag")
                future = self._pending.pop(tag, None)
                if future is not None and not future.done():
                    future.set_result(envelope)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            self._fail_pending(error)

    async def call(
        self, op: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One op round-trip; returns the answer payload, raises on error."""
        self._seq += 1
        tag = f"a{self._seq}"
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[tag] = future
        self._writer.write(encode_request(op, tag=tag, payload=payload))
        await self._writer.drain()
        envelope = await future
        data = envelope["data"]
        if envelope["kind"] == SERVER_ERROR_KIND:
            raise ServerError.from_data(data)
        return data["payload"]

    # -- typed helpers -----------------------------------------------------------

    async def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        return ScheduleResponse.from_dict(
            await self.call(OP_SCHEDULE, request.to_dict())
        )

    async def simulate(self, request: SimulationRequest) -> SimulationResponse:
        return SimulationResponse.from_dict(
            await self.call(OP_SIMULATE, request.to_dict())
        )

    async def stats(self) -> Dict[str, Any]:
        return await self.call(OP_STATS)

    async def health(self) -> Dict[str, Any]:
        return await self.call(OP_HEALTH)

    async def metrics(self) -> str:
        """The daemon's metrics in Prometheus text exposition format."""
        return (await self.call(OP_METRICS))["text"]

    async def shutdown(self) -> Dict[str, Any]:
        return await self.call(OP_SHUTDOWN)


# -- service adapters ----------------------------------------------------------


def parse_address(address: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` string (the campaign CLI's ``--server`` value)."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in {address!r}")
    if not (0 < port < 65536):
        raise ValueError(f"invalid port in {address!r}")
    return host, port


class RemoteSchedulingService:
    """A :class:`~repro.service.SchedulingService` look-alike over a daemon.

    Duck-types the surface :class:`~repro.campaign.CampaignRunner` (and
    similar drivers) use — ``n_workers``, ``submit``/``submit_batch``,
    ``stats``, ``close`` — so passing one as ``service=`` rides the daemon's
    warm pool and caches.  Caching/dedup happen server-side; ``cache`` is
    therefore ``None`` here.
    """

    _response_cls = ScheduleResponse

    def __init__(self, host: str, port: int, *, window: int = DEFAULT_WINDOW):
        self.client = ServerClient(host, port, window=window)
        self.cache = None
        self.n_workers = int(self.client.stats()["server"]["n_workers"])

    def submit(self, request):
        return self.submit_batch([request])[0]

    def submit_batch(self, requests) -> List[Any]:
        answers = self.client.submit_envelopes(
            [request.to_dict() for request in requests]
        )
        return [self._response_cls.from_dict(answer) for answer in answers]

    def stats(self) -> Dict[str, Any]:
        return self.client.stats()

    def close(self) -> None:
        self.client.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteSimulationService(RemoteSchedulingService):
    """A :class:`~repro.runtime.SimulationService` look-alike over a daemon."""

    _response_cls = SimulationResponse
