"""CLI of the serving daemon: ``python -m repro.server``.

``serve`` runs the daemon in the foreground until it is told to stop (the
wire-level ``shutdown`` op, SIGINT or SIGTERM — all drain gracefully)::

    python -m repro.server serve --port 7341 --workers 4 --cache-dir cache/

``request`` is the batch CLIs' exact JSONL contract, routed through a running
daemon instead of a private pool: request envelopes in (schedule and sim
requests may be mixed), response envelopes out, in input order — plus the
same declarative ``--scenario`` mode as ``python -m repro.service``::

    python -m repro.server request --server 127.0.0.1:7341 requests.jsonl -o out.jsonl
    python -m repro.server request --server 127.0.0.1:7341 \
        --scenario faulty-controller --systems 3 --methods static gpiocp

``stats``, ``health``, ``metrics`` and ``shutdown`` are one-shot ops against
a daemon (``metrics`` prints Prometheus text exposition, the rest JSON)::

    python -m repro.server stats --server 127.0.0.1:7341
    python -m repro.server metrics --server 127.0.0.1:7341
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
from typing import Any, Dict, List, Optional, Sequence, TextIO

from repro.core import logging as relog
from repro.server.client import ServerClient, parse_address
from repro.server.daemon import DEFAULT_HOST, ReproServer
from repro.server.dispatcher import DEFAULT_MAX_QUEUE
from repro.server.protocol import DEFAULT_MAX_LINE_BYTES

DEFAULT_PORT = 7341


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Persistent scheduling/simulation server and its clients.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run the daemon in the foreground until shut down"
    )
    serve.add_argument("--host", default=DEFAULT_HOST, help=f"bind address (default: {DEFAULT_HOST})")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"listen port; 0 binds an ephemeral port (default: {DEFAULT_PORT})",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes shared by scheduling and simulation (default: 1)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent cache root, in the batch CLIs' layout (schedules/ "
        "and sim-responses/ beneath it); omit to cache in memory only",
    )
    serve.add_argument(
        "--cache-backend",
        default=None,
        metavar="SPEC",
        help="storage backend for the persistent caches, as a 'name:key=value' "
        "spec string — e.g. 'sqlite:path=cache.db' holds both caches in one "
        "file (see `python -m repro.store --list-backends`).  Conflicts with "
        "--cache-dir",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_MAX_QUEUE,
        metavar="N",
        help="admission bound: computations queued or running before requests "
        f"are rejected with retry-after (default: {DEFAULT_MAX_QUEUE})",
    )
    serve.add_argument(
        "--max-line-bytes",
        type=int,
        default=DEFAULT_MAX_LINE_BYTES,
        metavar="N",
        help=f"wire-protocol per-line limit (default: {DEFAULT_MAX_LINE_BYTES})",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="FILE",
        help="write the bound port to FILE once listening (handy with --port 0)",
    )
    serve.add_argument(
        "--no-remote-shutdown",
        action="store_true",
        help="ignore the wire-level shutdown op (signals still work)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the final metrics (Prometheus text exposition) to FILE "
        "when the daemon stops",
    )
    relog.add_log_level_argument(serve, default="info")

    request = commands.add_parser(
        "request",
        help="send a JSONL request batch through a running daemon "
        "(the batch CLIs' envelope format, schedule and sim requests mixed)",
    )
    _add_server_argument(request)
    request.add_argument(
        "input",
        nargs="?",
        default=None,
        help="request JSONL file ('-' reads stdin); one versioned "
        "repro/schedule-request or repro/sim-request payload per line.  "
        "Omit when using --scenario",
    )
    request.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_JSON",
        help="generate schedule requests from a scenario (preset name or "
        "inline repro/scenario JSON) instead of reading a request file",
    )
    request.add_argument(
        "--systems",
        type=int,
        default=1,
        metavar="N",
        help="with --scenario: schedule system indices 0..N-1 (default: 1)",
    )
    request.add_argument(
        "--methods",
        nargs="+",
        default=["static"],
        metavar="SPEC",
        help="with --scenario: scheduler spec strings per system (default: static)",
    )
    request.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="response JSONL file (default: stdout)",
    )
    request.add_argument(
        "--window",
        type=int,
        default=32,
        metavar="N",
        help="requests kept in flight on the connection (default: 32)",
    )

    relog.add_log_level_argument(request)

    for name, help_text in (
        ("stats", "print a running daemon's live statistics as JSON"),
        ("health", "print a running daemon's health summary as JSON"),
        ("metrics", "print a running daemon's metrics as Prometheus text"),
        ("shutdown", "ask a running daemon to drain and exit"),
    ):
        command = commands.add_parser(name, help=help_text)
        _add_server_argument(command)
        relog.add_log_level_argument(command)
    return parser


def _add_server_argument(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--server",
        default=f"{DEFAULT_HOST}:{DEFAULT_PORT}",
        metavar="HOST:PORT",
        help=f"daemon address (default: {DEFAULT_HOST}:{DEFAULT_PORT})",
    )


def serve_main(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.cache_dir is not None and args.cache_backend is not None:
        parser.error("pass either --cache-dir or --cache-backend, not both")
    try:
        server = ReproServer(
            host=args.host,
            port=args.port,
            n_workers=args.workers,
            cache_dir=args.cache_dir,
            cache_backend=args.cache_backend,
            max_queue=args.max_queue,
            max_line_bytes=args.max_line_bytes,
            allow_remote_shutdown=not args.no_remote_shutdown,
            port_file=args.port_file,
        )
    except ValueError as error:
        parser.error(f"--cache-backend: {error}")

    async def run() -> None:
        loop = asyncio.get_running_loop()
        for signal_number in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signal_number, server.request_shutdown)
        await server.start()
        relog.info(
            "server-started",
            host=server.host,
            port=server.port,
            workers=args.workers,
            cache=args.cache_backend or args.cache_dir or "memory",
        )
        await server.run()

    asyncio.run(run())
    if args.metrics_out is not None:
        from repro.obs.expo import write_metrics_file

        write_metrics_file(args.metrics_out, server.metrics_snapshot())
        relog.info("metrics-written", path=args.metrics_out)
    relog.info("server-stopped")
    return 0


def read_envelopes(handle: TextIO, *, source: str) -> List[Dict[str, Any]]:
    """Read raw request envelopes (one JSON object per line)."""
    envelopes: List[Dict[str, Any]] = []
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            envelope = json.loads(line)
        except ValueError as error:
            raise SystemExit(f"{source}:{line_number}: invalid JSON: {error}")
        if not isinstance(envelope, dict):
            raise SystemExit(f"{source}:{line_number}: expected a JSON object")
        envelopes.append(envelope)
    return envelopes


def request_main(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if (args.input is None) == (args.scenario is None):
        parser.error("provide exactly one of an input file and --scenario")
    if args.systems < 1:
        parser.error(f"--systems must be >= 1, got {args.systems}")
    if args.scenario is not None:
        from repro.service.__main__ import scenario_requests

        try:
            requests = scenario_requests(args.scenario, args.methods, args.systems)
        except (ValueError, KeyError) as error:
            parser.error(f"--scenario: {error}")
        envelopes = [request.to_dict() for request in requests]
    elif args.input == "-":
        envelopes = read_envelopes(sys.stdin, source="<stdin>")
    else:
        with open(args.input, "r", encoding="utf-8") as handle:
            envelopes = read_envelopes(handle, source=args.input)

    host, port = parse_address(args.server)
    with ServerClient(host, port, window=args.window) as client:
        answers = client.submit_envelopes(envelopes)

    lines = "".join(json.dumps(answer, sort_keys=True) + "\n" for answer in answers)
    if args.output is None:
        sys.stdout.write(lines)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(lines)

    statuses = [answer["data"]["cache"]["status"] for answer in answers]
    computed = sum(1 for status in statuses if status != "hit")
    hits = sum(1 for status in statuses if status == "hit")
    print(
        f"{len(answers)} response(s): {computed} computed, {hits} served from cache",
        file=sys.stderr,
    )
    return 0


def one_shot_main(args: argparse.Namespace) -> int:
    host, port = parse_address(args.server)
    with ServerClient(host, port) as client:
        payload = client.call(args.command)
    if args.command == "metrics":
        # The payload wraps Prometheus text exposition; print it raw so the
        # output pipes straight into scrape tooling.
        sys.stdout.write(payload["text"])
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    relog.configure_from_args(args)
    if args.command == "serve":
        return serve_main(args, parser)
    if args.command == "request":
        try:
            parse_address(args.server)
        except ValueError as error:
            parser.error(f"--server: {error}")
        return request_main(args, parser)
    try:
        parse_address(args.server)
    except ValueError as error:
        parser.error(f"--server: {error}")
    return one_shot_main(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
