"""Async request dispatch: admission control, in-flight dedup, live counters.

The dispatcher is the daemon's policy layer between the wire and the warm
services.  For every admitted request it runs exactly the same pure execution
path as the batch CLIs (the services' observed pool entries,
:meth:`SchedulingService.execute_in_pool_observed
<repro.service.SchedulingService.execute_in_pool_observed>` /
:meth:`SimulationService.execute_in_pool_observed
<repro.runtime.SimulationService.execute_in_pool_observed>` on the shared
worker pool), and layers three serving-only behaviours on top:

* **admission control** — at most ``max_queue`` computations may be queued or
  running at once; a request that would exceed the bound is rejected with
  :class:`Overloaded`, carrying a ``retry_after_s`` hint derived from the
  observed compute time and the current backlog (the client library sleeps
  and retries on it).  Cache hits and deduplicated followers bypass
  admission entirely: they cost no compute.
* **cross-request in-flight dedup** — a request whose content key is already
  being computed (for any client, on any connection) awaits the same future
  instead of re-evaluating.  The leader's response is stamped ``miss``;
  followers are stamped ``hit`` exactly like intra-batch duplicates in
  :meth:`SchedulingService.submit_batch`.
* **drain** — once :meth:`drain` is called, new computations are refused with
  :class:`Draining` while everything already in flight runs to completion,
  which is what makes the daemon's shutdown graceful.

Every counter lives on the dispatcher's :class:`~repro.obs.MetricsRegistry`
(``repro_server_requests_total``, ``repro_server_computed_total``,
``repro_server_dedup_total``, ``repro_requests_total`` and the phase latency
histograms); :meth:`stats` reads the same registry, so the ``stats`` RPC and
the ``metrics`` RPC can never disagree.  Pool workers ship their own registry
snapshots back with each result and the dispatcher merges them in.

Everything is content-addressed and pure, so admission/dedup/caching —
and observation — can never change an answer, only how much work producing
it costs.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.obs.metrics import (
    REQUEST_LATENCY_MS,
    REQUESTS_TOTAL,
    SERVER_COMPUTED_TOTAL,
    SERVER_DEDUP_TOTAL,
    SERVER_REQUESTS_TOTAL,
    MetricsRegistry,
)
from repro.obs.trace import PHASE_CACHE_LOOKUP, PHASE_STORE
from repro.runtime.messages import SimulationRequest, SimulationResponse
from repro.runtime.service import SimulationService
from repro.service.messages import (
    CACHE_DISABLED,
    CACHE_HIT,
    CACHE_MISS,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.service.service import SchedulingService

#: Default bound on queued-or-running computations.
DEFAULT_MAX_QUEUE = 64

#: Dispatch kinds (stats sections and in-flight namespaces).
KIND_SCHEDULE = "schedule"
KIND_SIMULATION = "simulation"

Response = Union[ScheduleResponse, SimulationResponse]

_ADMISSION_HELP = "Daemon admission outcomes (admitted/rejected/failed)."
_COMPUTED_HELP = "Computations completed by the daemon's dispatcher, by kind."
_DEDUP_HELP = "Requests answered by awaiting an identical in-flight computation."
_REQUESTS_HELP = "Requests answered, by kind and cache status."
_LATENCY_HELP = "Per-phase request latency in milliseconds."


class Overloaded(Exception):
    """Admission refused: the queue is full.  Retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float):
        super().__init__(f"admission queue full; retry after {retry_after_s}s")
        self.retry_after_s = retry_after_s


class Draining(Exception):
    """Admission refused: the daemon is shutting down."""


class Dispatcher:
    """Admission + dedup + caching over the two warm services' pools."""

    def __init__(
        self,
        *,
        scheduling: SchedulingService,
        simulation: SimulationService,
        max_queue: int = DEFAULT_MAX_QUEUE,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if not isinstance(max_queue, int) or max_queue < 1:
            raise ValueError(f"max_queue must be a positive integer, got {max_queue!r}")
        self.scheduling = scheduling
        self.simulation = simulation
        self.max_queue = max_queue
        self.draining = False
        #: Content keys currently being computed -> the future their waiters share.
        self._inflight: Dict[Tuple[str, str], "asyncio.Future[Response]"] = {}
        self._active = 0
        #: All dispatcher counters and phase histograms live here (the daemon
        #: passes its own registry so one scrape covers everything).
        self.registry = metrics if metrics is not None else MetricsRegistry()
        # EWMA of observed compute seconds, seeding the retry-after hint.
        self._avg_compute_s = 0.1

    # -- counters (the registry is the one source of truth) ----------------------

    def _count_admission(self, result: str) -> None:
        self.registry.counter_inc(
            SERVER_REQUESTS_TOTAL, help=_ADMISSION_HELP, result=result
        )

    def _count_request(self, kind: str, cache: str) -> None:
        self.registry.counter_inc(
            REQUESTS_TOTAL, help=_REQUESTS_HELP, kind=kind, cache=cache
        )

    def _observe_phase(self, kind: str, phase: str, duration_s: float) -> None:
        self.registry.histogram_observe(
            REQUEST_LATENCY_MS,
            max(0.0, duration_s) * 1000.0,
            help=_LATENCY_HELP,
            kind=kind,
            phase=phase,
        )

    @property
    def admitted(self) -> int:
        return int(self.registry.counter_value(SERVER_REQUESTS_TOTAL, result="admitted"))

    @property
    def rejected(self) -> int:
        return int(self.registry.counter_value(SERVER_REQUESTS_TOTAL, result="rejected"))

    @property
    def failed(self) -> int:
        return int(self.registry.counter_value(SERVER_REQUESTS_TOTAL, result="failed"))

    def computed(self, kind: str) -> int:
        return int(self.registry.counter_value(SERVER_COMPUTED_TOTAL, kind=kind))

    def deduped(self, kind: str) -> int:
        return int(self.registry.counter_value(SERVER_DEDUP_TOTAL, kind=kind))

    # -- the API -----------------------------------------------------------------

    async def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """Answer one scheduling request (cache -> dedup -> admitted compute)."""
        return await self._dispatch(
            KIND_SCHEDULE,
            request.content_key(),
            self.scheduling.cache,
            lambda: self._submit(self.scheduling, request),
            request.request_id,
            ScheduleResponse,
        )

    async def simulate(self, request: SimulationRequest) -> SimulationResponse:
        """Answer one simulation request (cache -> dedup -> admitted compute)."""
        return await self._dispatch(
            KIND_SIMULATION,
            request.content_key(),
            self.simulation.cache,
            lambda: self._submit(self.simulation, request),
            request.request_id,
            SimulationResponse,
        )

    @staticmethod
    def _submit(service, request):
        """Submit through the observed pool entry when the service has one.

        Test stubs (and any duck-typed service) that only implement
        ``execute_in_pool`` keep working: :meth:`_compute` accepts both the
        bare response and the observed ``(response, trace, snapshot)`` triple.
        """
        observed = getattr(service, "execute_in_pool_observed", None)
        if observed is not None:
            return observed(request)
        return service.execute_in_pool(request)

    async def _dispatch(
        self,
        kind: str,
        key: str,
        cache,
        submit: Callable[[], "Any"],
        request_id: Optional[str],
        response_cls,
    ) -> Response:
        if cache is not None:
            lookup_started = time.monotonic()
            cached = cache.get(key)
            self._observe_phase(
                kind, PHASE_CACHE_LOOKUP, time.monotonic() - lookup_started
            )
            if cached is not None:
                self._count_request(kind, CACHE_HIT)
                return response_cls.from_result_dict(
                    cached, request_id=request_id, cache=CACHE_HIT, cache_key=key
                )

        token = (kind, key)
        existing = self._inflight.get(token)
        if existing is not None:
            # Same content, already being computed for someone else: await the
            # shared future (shielded — one waiter's cancellation must not
            # cancel the computation out from under the others).
            self.registry.counter_inc(SERVER_DEDUP_TOTAL, help=_DEDUP_HELP, kind=kind)
            result = await asyncio.shield(existing)
            self._count_request(kind, CACHE_HIT)
            return replace(result, request_id=request_id, cache=CACHE_HIT, cache_key=key)

        if self.draining:
            raise Draining("daemon is draining; no new work admitted")
        if self._active >= self.max_queue:
            self._count_admission("rejected")
            raise Overloaded(self.retry_after_s())

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Response]" = loop.create_future()
        self._inflight[token] = future
        self._active += 1
        self._count_admission("admitted")
        # The computation runs as its own task, decoupled from this request's:
        # a client that disconnects mid-compute (cancelling its handler task)
        # must not tear down work that other waiters — or the cache — still
        # want.  Leader and followers alike await the shielded shared future.
        loop.create_task(self._compute(kind, token, cache, submit, future))
        result = await asyncio.shield(future)
        status = CACHE_MISS if cache is not None else CACHE_DISABLED
        self._count_request(kind, status)
        return replace(result, request_id=request_id, cache=status, cache_key=key)

    async def _compute(
        self,
        kind: str,
        token: Tuple[str, str],
        cache,
        submit: Callable[[], "Any"],
        future: "asyncio.Future[Response]",
    ) -> None:
        started = time.perf_counter()
        try:
            outcome = await asyncio.wrap_future(submit())
        except BaseException as error:
            self._count_admission("failed")
            future.set_exception(error)
            future.exception()  # waiters re-raise on their own await
        else:
            if isinstance(outcome, tuple):
                # Observed pool entry: the worker's registry snapshot merges
                # into ours (phase histograms, queue-wait included).
                result, _trace, snapshot = outcome
                self.registry.merge(snapshot)
            else:
                result = outcome
            self._avg_compute_s += 0.2 * (
                (time.perf_counter() - started) - self._avg_compute_s
            )
            if cache is not None:
                # Populate the cache *before* dropping the in-flight token:
                # an identical request arriving in between must find one of
                # the two, never a gap that would recompute.
                store_started = time.monotonic()
                cache.put(token[1], result.result_dict())
                self._observe_phase(
                    kind, PHASE_STORE, time.monotonic() - store_started
                )
            self.registry.counter_inc(
                SERVER_COMPUTED_TOTAL, help=_COMPUTED_HELP, kind=kind
            )
            future.set_result(result)
        finally:
            del self._inflight[token]
            self._active -= 1

    # -- lifecycle ---------------------------------------------------------------

    async def drain(self) -> None:
        """Refuse new work and wait for everything in flight to finish."""
        self.draining = True
        pending = [future for future in self._inflight.values() if not future.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    # -- introspection -----------------------------------------------------------

    def retry_after_s(self) -> float:
        """Back-off hint: roughly one backlog's worth of observed compute time."""
        workers = max(1, self.scheduling.n_workers)
        backlog = max(1, self._active)
        return round(max(0.05, self._avg_compute_s * backlog / workers), 3)

    @property
    def queue_depth(self) -> int:
        """Computations currently queued or running."""
        return self._active

    def stats(self) -> Dict[str, Any]:
        """Live snapshot: queue, admission counters, per-kind compute + caches.

        Every number is read off :attr:`registry` — the same source the
        ``metrics`` RPC renders.
        """
        schedule_cache = self.scheduling.cache
        sim_cache = self.simulation.cache
        return {
            "queue": {"depth": self._active, "limit": self.max_queue},
            "requests": {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "failed": self.failed,
                "in_flight_dedup": self.deduped(KIND_SCHEDULE)
                + self.deduped(KIND_SIMULATION),
            },
            KIND_SCHEDULE: {
                "computed": self.computed(KIND_SCHEDULE),
                "in_flight_dedup": self.deduped(KIND_SCHEDULE),
                "cache": schedule_cache.stats() if schedule_cache is not None else None,
            },
            KIND_SIMULATION: {
                "computed": self.computed(KIND_SIMULATION),
                "in_flight_dedup": self.deduped(KIND_SIMULATION),
                "cache": sim_cache.stats() if sim_cache is not None else None,
            },
        }
