"""Async request dispatch: admission control, in-flight dedup, live counters.

The dispatcher is the daemon's policy layer between the wire and the warm
services.  For every admitted request it runs exactly the same pure execution
path as the batch CLIs (:meth:`SchedulingService.execute_in_pool
<repro.service.SchedulingService.execute_in_pool>` /
:meth:`SimulationService.execute_in_pool
<repro.runtime.SimulationService.execute_in_pool>` on the shared worker
pool), and layers three serving-only behaviours on top:

* **admission control** — at most ``max_queue`` computations may be queued or
  running at once; a request that would exceed the bound is rejected with
  :class:`Overloaded`, carrying a ``retry_after_s`` hint derived from the
  observed compute time and the current backlog (the client library sleeps
  and retries on it).  Cache hits and deduplicated followers bypass
  admission entirely: they cost no compute.
* **cross-request in-flight dedup** — a request whose content key is already
  being computed (for any client, on any connection) awaits the same future
  instead of re-evaluating.  The leader's response is stamped ``miss``;
  followers are stamped ``hit`` exactly like intra-batch duplicates in
  :meth:`SchedulingService.submit_batch`.
* **drain** — once :meth:`drain` is called, new computations are refused with
  :class:`Draining` while everything already in flight runs to completion,
  which is what makes the daemon's shutdown graceful.

Everything is content-addressed and pure, so admission/dedup/caching can
never change an answer — only how much work producing it costs.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.runtime.messages import SimulationRequest, SimulationResponse
from repro.runtime.service import SimulationService
from repro.service.messages import (
    CACHE_DISABLED,
    CACHE_HIT,
    CACHE_MISS,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.service.service import SchedulingService

#: Default bound on queued-or-running computations.
DEFAULT_MAX_QUEUE = 64

#: Dispatch kinds (stats sections and in-flight namespaces).
KIND_SCHEDULE = "schedule"
KIND_SIMULATION = "simulation"

Response = Union[ScheduleResponse, SimulationResponse]


class Overloaded(Exception):
    """Admission refused: the queue is full.  Retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float):
        super().__init__(f"admission queue full; retry after {retry_after_s}s")
        self.retry_after_s = retry_after_s


class Draining(Exception):
    """Admission refused: the daemon is shutting down."""


class Dispatcher:
    """Admission + dedup + caching over the two warm services' pools."""

    def __init__(
        self,
        *,
        scheduling: SchedulingService,
        simulation: SimulationService,
        max_queue: int = DEFAULT_MAX_QUEUE,
    ):
        if not isinstance(max_queue, int) or max_queue < 1:
            raise ValueError(f"max_queue must be a positive integer, got {max_queue!r}")
        self.scheduling = scheduling
        self.simulation = simulation
        self.max_queue = max_queue
        self.draining = False
        #: Content keys currently being computed -> the future their waiters share.
        self._inflight: Dict[Tuple[str, str], "asyncio.Future[Response]"] = {}
        self._active = 0
        self.admitted = 0
        self.rejected = 0
        self.failed = 0
        self._kind_counters = {
            KIND_SCHEDULE: {"computed": 0, "in_flight_dedup": 0},
            KIND_SIMULATION: {"computed": 0, "in_flight_dedup": 0},
        }
        # EWMA of observed compute seconds, seeding the retry-after hint.
        self._avg_compute_s = 0.1

    # -- the API -----------------------------------------------------------------

    async def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """Answer one scheduling request (cache -> dedup -> admitted compute)."""
        return await self._dispatch(
            KIND_SCHEDULE,
            request.content_key(),
            self.scheduling.cache,
            lambda: self.scheduling.execute_in_pool(request),
            request.request_id,
            ScheduleResponse,
        )

    async def simulate(self, request: SimulationRequest) -> SimulationResponse:
        """Answer one simulation request (cache -> dedup -> admitted compute)."""
        return await self._dispatch(
            KIND_SIMULATION,
            request.content_key(),
            self.simulation.cache,
            lambda: self.simulation.execute_in_pool(request),
            request.request_id,
            SimulationResponse,
        )

    async def _dispatch(
        self,
        kind: str,
        key: str,
        cache,
        submit: Callable[[], "Any"],
        request_id: Optional[str],
        response_cls,
    ) -> Response:
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                return response_cls.from_result_dict(
                    cached, request_id=request_id, cache=CACHE_HIT, cache_key=key
                )

        token = (kind, key)
        existing = self._inflight.get(token)
        if existing is not None:
            # Same content, already being computed for someone else: await the
            # shared future (shielded — one waiter's cancellation must not
            # cancel the computation out from under the others).
            self._kind_counters[kind]["in_flight_dedup"] += 1
            result = await asyncio.shield(existing)
            return replace(result, request_id=request_id, cache=CACHE_HIT, cache_key=key)

        if self.draining:
            raise Draining("daemon is draining; no new work admitted")
        if self._active >= self.max_queue:
            self.rejected += 1
            raise Overloaded(self.retry_after_s())

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Response]" = loop.create_future()
        self._inflight[token] = future
        self._active += 1
        self.admitted += 1
        # The computation runs as its own task, decoupled from this request's:
        # a client that disconnects mid-compute (cancelling its handler task)
        # must not tear down work that other waiters — or the cache — still
        # want.  Leader and followers alike await the shielded shared future.
        loop.create_task(self._compute(kind, token, cache, submit, future))
        result = await asyncio.shield(future)
        status = CACHE_MISS if cache is not None else CACHE_DISABLED
        return replace(result, request_id=request_id, cache=status, cache_key=key)

    async def _compute(
        self,
        kind: str,
        token: Tuple[str, str],
        cache,
        submit: Callable[[], "Any"],
        future: "asyncio.Future[Response]",
    ) -> None:
        started = time.perf_counter()
        try:
            result = await asyncio.wrap_future(submit())
        except BaseException as error:
            self.failed += 1
            future.set_exception(error)
            future.exception()  # waiters re-raise on their own await
        else:
            self._avg_compute_s += 0.2 * (
                (time.perf_counter() - started) - self._avg_compute_s
            )
            if cache is not None:
                # Populate the cache *before* dropping the in-flight token:
                # an identical request arriving in between must find one of
                # the two, never a gap that would recompute.
                cache.put(token[1], result.result_dict())
            self._kind_counters[kind]["computed"] += 1
            future.set_result(result)
        finally:
            del self._inflight[token]
            self._active -= 1

    # -- lifecycle ---------------------------------------------------------------

    async def drain(self) -> None:
        """Refuse new work and wait for everything in flight to finish."""
        self.draining = True
        pending = [future for future in self._inflight.values() if not future.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    # -- introspection -----------------------------------------------------------

    def retry_after_s(self) -> float:
        """Back-off hint: roughly one backlog's worth of observed compute time."""
        workers = max(1, self.scheduling.n_workers)
        backlog = max(1, self._active)
        return round(max(0.05, self._avg_compute_s * backlog / workers), 3)

    @property
    def queue_depth(self) -> int:
        """Computations currently queued or running."""
        return self._active

    def stats(self) -> Dict[str, Any]:
        """Live snapshot: queue, admission counters, per-kind compute + caches."""
        schedule_cache = self.scheduling.cache
        sim_cache = self.simulation.cache
        return {
            "queue": {"depth": self._active, "limit": self.max_queue},
            "requests": {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "failed": self.failed,
                "in_flight_dedup": sum(
                    counters["in_flight_dedup"]
                    for counters in self._kind_counters.values()
                ),
            },
            KIND_SCHEDULE: {
                **self._kind_counters[KIND_SCHEDULE],
                "cache": schedule_cache.stats() if schedule_cache is not None else None,
            },
            KIND_SIMULATION: {
                **self._kind_counters[KIND_SIMULATION],
                "cache": sim_cache.stats() if sim_cache is not None else None,
            },
        }
