"""repro.server — the persistent serving daemon and its clients.

The batch CLIs (:mod:`repro.service`, :mod:`repro.runtime`) pay pool spin-up,
cache loading and interpreter start on every invocation.  This package keeps
all of that *warm* behind a socket:

* :class:`ReproServer` — an asyncio TCP daemon owning one
  :class:`~repro.service.SchedulingService` + one
  :class:`~repro.runtime.SimulationService` (shared worker pool, shared
  content-addressed caches), with bounded admission (reject + retry-after
  under load), cross-request in-flight dedup, live ``stats``/``health`` ops
  and graceful draining shutdown; :class:`ThreadedServer` runs one on a
  background thread.
* :class:`ServerClient` / :class:`AsyncServerClient` — sync and asyncio
  clients over the newline-delimited JSON wire protocol
  (:mod:`repro.server.protocol`), including windowed batch pipelining.
* :class:`RemoteSchedulingService` / :class:`RemoteSimulationService` —
  service look-alikes over a daemon, so e.g.
  :class:`~repro.campaign.CampaignRunner` rides a warm server via
  ``--server HOST:PORT``.
* ``python -m repro.server`` — ``serve`` runs a daemon; ``request`` pipes
  the batch CLIs' JSONL envelopes through one; ``stats``/``health``/
  ``shutdown`` are one-shot ops.

Answers are byte-identical to the batch CLIs' output for the same requests —
the daemon changes where the work runs, never what it computes.
"""

from repro.server.client import (
    AsyncServerClient,
    RemoteSchedulingService,
    RemoteSimulationService,
    ServerClient,
    ServerError,
    parse_address,
)
from repro.server.daemon import ReproServer, ThreadedServer
from repro.server.dispatcher import (
    DEFAULT_MAX_QUEUE,
    Dispatcher,
    Draining,
    Overloaded,
)
from repro.server.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    FrameDecoder,
    ProtocolError,
    ServerRequest,
)

__all__ = [
    "ReproServer",
    "ThreadedServer",
    "ServerClient",
    "AsyncServerClient",
    "ServerError",
    "RemoteSchedulingService",
    "RemoteSimulationService",
    "parse_address",
    "Dispatcher",
    "Overloaded",
    "Draining",
    "FrameDecoder",
    "ProtocolError",
    "ServerRequest",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_MAX_LINE_BYTES",
]
