"""Wire protocol of the serving daemon: one JSON envelope per line.

The protocol is deliberately the thinnest possible layer over the formats the
batch CLIs already speak: every line is one versioned ``{kind, version,
data}`` payload (UTF-8 JSON, terminated by ``\\n``), and the *result* payloads
travelling inside it are byte-for-byte the ``repro/schedule-response`` /
``repro/sim-response`` envelopes of :mod:`repro.service` and
:mod:`repro.runtime`.  A consumer that can read the batch CLIs' JSONL output
can read the daemon's answers unchanged.

Three envelope kinds exist on the wire:

``repro/server-request``
    ``data = {op, tag?, payload?}``.  ``op`` is one of :data:`OPS` —
    ``schedule`` and ``simulate`` carry the corresponding request envelope in
    ``payload``; ``stats``, ``health`` and ``shutdown`` take none.  ``tag``
    is free-form client correlation, echoed verbatim on the answer (requests
    on one connection may complete out of order).
``repro/server-response``
    ``data = {op, tag, payload}`` — the successful answer.
``repro/server-error``
    ``data = {tag, error, message, retry_after_s?}`` — the structured error
    answer.  ``error`` is a stable machine-readable code (:data:`ERROR_CODES`);
    ``retry_after_s`` accompanies :data:`ERR_OVERLOADED` as the admission
    controller's back-off hint.

For convenience a bare ``repro/schedule-request`` / ``repro/sim-request``
envelope is also accepted as a line of its own — the op is implied by the
kind and the request's ``id`` doubles as the tag — so existing request JSONL
files can be piped to a daemon verbatim.

Framing is handled by :class:`FrameDecoder`, which enforces a maximum line
length (an oversized line yields an :class:`OversizedFrame` and the decoder
resynchronises at the next newline instead of buffering without bound), and
parsing by :func:`decode_request_line`, which maps every malformed input to a
:class:`ProtocolError` carrying the error code the daemon answers with —
a bad line is *always* a structured error response, never a crash or a
silent drop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.runtime.messages import SIM_REQUEST_KIND
from repro.service.messages import REQUEST_KIND as SCHEDULE_REQUEST_KIND

SERVER_REQUEST_KIND = "repro/server-request"
SERVER_REQUEST_VERSION = 1
SERVER_RESPONSE_KIND = "repro/server-response"
SERVER_RESPONSE_VERSION = 1
SERVER_ERROR_KIND = "repro/server-error"
SERVER_ERROR_VERSION = 1

#: Operations a server request can carry.
OP_SCHEDULE = "schedule"
OP_SIMULATE = "simulate"
OP_STATS = "stats"
OP_HEALTH = "health"
OP_METRICS = "metrics"
OP_SHUTDOWN = "shutdown"
OPS = (OP_SCHEDULE, OP_SIMULATE, OP_STATS, OP_HEALTH, OP_METRICS, OP_SHUTDOWN)

#: Ops that must carry a request payload.
PAYLOAD_OPS = (OP_SCHEDULE, OP_SIMULATE)

#: Stable machine-readable error codes of ``repro/server-error`` envelopes.
ERR_INVALID_JSON = "invalid-json"
ERR_OVERSIZED_LINE = "oversized-line"
ERR_UNKNOWN_KIND = "unknown-kind"
ERR_UNKNOWN_OP = "unknown-op"
ERR_VERSION_MISMATCH = "version-mismatch"
ERR_INVALID_REQUEST = "invalid-request"
ERR_OVERLOADED = "overloaded"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_INTERNAL = "internal"
ERROR_CODES = (
    ERR_INVALID_JSON,
    ERR_OVERSIZED_LINE,
    ERR_UNKNOWN_KIND,
    ERR_UNKNOWN_OP,
    ERR_VERSION_MISMATCH,
    ERR_INVALID_REQUEST,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    ERR_INTERNAL,
)

#: Default maximum accepted line length (requests *and* responses comfortably
#: fit paper-scale task sets; a daemon can be configured differently).
DEFAULT_MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(ValueError):
    """A wire-level violation, carrying the error code to answer with."""

    def __init__(self, code: str, message: str, *, tag: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.tag = tag


@dataclass(frozen=True)
class ServerRequest:
    """One decoded request line: the op to perform, on which payload."""

    op: str
    tag: Optional[str] = None
    payload: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class OversizedFrame:
    """Marker frame: a line exceeded the decoder's maximum length."""

    length: int


Frame = Union[bytes, OversizedFrame]


class FrameDecoder:
    """Incremental newline framing with a hard per-line size limit.

    Feed raw socket chunks in; complete lines (without the trailing newline)
    come out.  A line longer than ``max_line_bytes`` is *not* buffered: the
    decoder discards it as it streams past, emits one :class:`OversizedFrame`
    when its newline finally arrives, and resynchronises on the next line —
    so one misbehaving client line can neither exhaust daemon memory nor
    desynchronise the rest of the connection.
    """

    def __init__(self, max_line_bytes: int = DEFAULT_MAX_LINE_BYTES):
        if max_line_bytes < 1:
            raise ValueError(f"max_line_bytes must be positive, got {max_line_bytes}")
        self.max_line_bytes = max_line_bytes
        self._buffer = bytearray()
        self._discarding = 0  # bytes of the current oversized line dropped so far

    def feed(self, data: bytes) -> List[Frame]:
        """Decode ``data``; returns the frames it completed."""
        frames: List[Frame] = []
        self._buffer.extend(data)
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if self._discarding:
                    # Still inside an oversized line: keep dropping.
                    self._discarding += len(self._buffer)
                    self._buffer.clear()
                elif len(self._buffer) > self.max_line_bytes:
                    self._discarding = len(self._buffer)
                    self._buffer.clear()
                break
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if self._discarding:
                frames.append(OversizedFrame(self._discarding + len(line)))
                self._discarding = 0
            elif len(line) > self.max_line_bytes:
                frames.append(OversizedFrame(len(line)))
            else:
                frames.append(line)
        return frames


# -- encoding ------------------------------------------------------------------


def _encode(kind: str, version: int, data: Dict[str, Any]) -> bytes:
    payload = {"kind": kind, "version": version, "data": data}
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def encode_request(
    op: str, *, tag: Optional[str] = None, payload: Optional[Dict[str, Any]] = None
) -> bytes:
    """One ``repro/server-request`` line."""
    data: Dict[str, Any] = {"op": op}
    if tag is not None:
        data["tag"] = tag
    if payload is not None:
        data["payload"] = payload
    return _encode(SERVER_REQUEST_KIND, SERVER_REQUEST_VERSION, data)


def encode_response(op: str, tag: Optional[str], payload: Dict[str, Any]) -> bytes:
    """One ``repro/server-response`` line."""
    return _encode(
        SERVER_RESPONSE_KIND,
        SERVER_RESPONSE_VERSION,
        {"op": op, "tag": tag, "payload": payload},
    )


def encode_error(
    tag: Optional[str],
    code: str,
    message: str,
    *,
    retry_after_s: Optional[float] = None,
) -> bytes:
    """One ``repro/server-error`` line."""
    data: Dict[str, Any] = {"tag": tag, "error": code, "message": message}
    if retry_after_s is not None:
        data["retry_after_s"] = retry_after_s
    return _encode(SERVER_ERROR_KIND, SERVER_ERROR_VERSION, data)


# -- decoding ------------------------------------------------------------------


def _tag_of(value: Any) -> Optional[str]:
    if value is None:
        return None
    if isinstance(value, str):
        return value
    raise ProtocolError(ERR_INVALID_REQUEST, f"tag must be a string, got {value!r}")


def decode_request_line(line: bytes) -> ServerRequest:
    """Parse one request line into a :class:`ServerRequest`.

    Raises :class:`ProtocolError` — carrying the error code and, when the
    line was parseable enough to contain one, the client's tag — for every
    malformed input: invalid JSON, an unknown envelope kind, a wrapper
    version this server does not speak, an unknown op, or a missing payload.
    The *inner* request envelope is deliberately not validated here; the
    dispatcher parses it (so its version/validation errors are reported
    against the correct tag).
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(ERR_INVALID_JSON, f"invalid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            ERR_INVALID_JSON, f"expected a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind == SERVER_REQUEST_KIND:
        data = payload.get("data")
        if not isinstance(data, dict):
            raise ProtocolError(ERR_INVALID_REQUEST, "server-request data must be an object")
        tag = _tag_of(data.get("tag"))
        version = payload.get("version")
        if not isinstance(version, int) or version < 1:
            raise ProtocolError(
                ERR_VERSION_MISMATCH,
                f"invalid server-request version {version!r}",
                tag=tag,
            )
        if version > SERVER_REQUEST_VERSION:
            raise ProtocolError(
                ERR_VERSION_MISMATCH,
                f"server-request version {version} is newer than this server "
                f"understands (<= {SERVER_REQUEST_VERSION})",
                tag=tag,
            )
        op = data.get("op")
        if op not in OPS:
            raise ProtocolError(
                ERR_UNKNOWN_OP, f"unknown op {op!r} (expected one of {', '.join(OPS)})", tag=tag
            )
        request_payload = data.get("payload")
        if op in PAYLOAD_OPS:
            if not isinstance(request_payload, dict):
                raise ProtocolError(
                    ERR_INVALID_REQUEST, f"op {op!r} requires a payload object", tag=tag
                )
        else:
            request_payload = None
        return ServerRequest(op=op, tag=tag, payload=request_payload)
    if kind == SCHEDULE_REQUEST_KIND:
        data = payload.get("data")
        tag = _tag_of(data.get("id")) if isinstance(data, dict) else None
        return ServerRequest(op=OP_SCHEDULE, tag=tag, payload=payload)
    if kind == SIM_REQUEST_KIND:
        data = payload.get("data")
        tag = _tag_of(data.get("id")) if isinstance(data, dict) else None
        return ServerRequest(op=OP_SIMULATE, tag=tag, payload=payload)
    raise ProtocolError(ERR_UNKNOWN_KIND, f"unknown envelope kind {kind!r}")


def decode_answer_line(line: bytes) -> Dict[str, Any]:
    """Parse one answer line (client side); returns the raw envelope dict.

    Accepts ``repro/server-response`` and ``repro/server-error`` envelopes;
    anything else raises :class:`ProtocolError` (the daemon never sends
    other kinds).
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(ERR_INVALID_JSON, f"invalid JSON from server: {error}")
    if not isinstance(payload, dict) or payload.get("kind") not in (
        SERVER_RESPONSE_KIND,
        SERVER_ERROR_KIND,
    ):
        raise ProtocolError(
            ERR_UNKNOWN_KIND, f"unexpected answer from server: {payload!r:.200}"
        )
    return payload
