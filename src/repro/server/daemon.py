"""The serving daemon: one warm service pair behind a TCP line protocol.

:class:`ReproServer` owns exactly one :class:`~repro.service.SchedulingService`
and one :class:`~repro.runtime.SimulationService` — sharing a single worker
pool and, when a cache directory is given, the same on-disk caches as the
batch CLIs (``<cache_dir>/schedules/`` + ``<cache_dir>/sim-responses/``) — and
serves them over newline-delimited JSON on a TCP socket.  The daemon
amortises what the batch CLIs pay per invocation: pool spin-up, cache
loading, interpreter start.

Per connection, requests are handled concurrently (each request line becomes
a task; answers carry the request's ``tag`` precisely because they may
complete out of order).  Policy — admission control, cross-request dedup,
drain — lives in the :class:`~repro.server.dispatcher.Dispatcher`; this
module only does sockets, framing and lifecycle:

* a malformed line is answered with a ``repro/server-error`` envelope and the
  connection keeps going — a bad client request can never crash the daemon
  or silently vanish;
* shutdown (the ``shutdown`` op, :meth:`ReproServer.request_shutdown`, or a
  signal wired to it) is *graceful*: the listener closes, in-flight work
  drains to completion and every pending answer is flushed before the
  process lets go of its pool.

:class:`ThreadedServer` runs a daemon on a background thread of the current
process — the form the tests and benchmarks use, and a convenient way to
embed a server in a notebook or driver script.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.serialization import PayloadVersionError
from repro.obs.expo import render
from repro.obs.metrics import (
    SERVER_CONNECTIONS_OPEN,
    SERVER_CONNECTIONS_TOTAL,
    SERVER_QUEUE_DEPTH,
    SERVER_UPTIME_SECONDS,
    MetricsRegistry,
    merge_snapshots,
)
from repro.runtime.messages import SimulationRequest
from repro.runtime.service import (
    SCHEDULE_CACHE_SUBDIR,
    SIM_CACHE_SUBDIR,
    SimulationService,
)
from repro.server.dispatcher import (
    DEFAULT_MAX_QUEUE,
    Dispatcher,
    Draining,
    Overloaded,
)
from repro.server.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    ERR_INTERNAL,
    ERR_INVALID_REQUEST,
    ERR_OVERLOADED,
    ERR_OVERSIZED_LINE,
    ERR_SHUTTING_DOWN,
    ERR_VERSION_MISMATCH,
    OP_HEALTH,
    OP_METRICS,
    OP_SCHEDULE,
    OP_SHUTDOWN,
    OP_SIMULATE,
    OP_STATS,
    FrameDecoder,
    OversizedFrame,
    ProtocolError,
    ServerRequest,
    decode_request_line,
    encode_error,
    encode_response,
)
from repro.service.messages import ScheduleRequest
from repro.service.service import SchedulingService

DEFAULT_HOST = "127.0.0.1"
_READ_CHUNK = 1 << 16


class ReproServer:
    """A persistent scheduling/simulation server over asyncio TCP.

    Parameters
    ----------
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port; the bound port
        is available as :attr:`port` once :meth:`start` has run (and is
        written to ``port_file`` when given, for launcher scripts).
    n_workers:
        Worker-pool size shared by scheduling and simulation.
    cache_dir:
        Root of the on-disk caches, in the exact layout of the batch CLIs
        (``schedules/`` + ``sim-responses/`` beneath it).  ``None`` serves
        from memory only.
    cache_backend:
        Storage-backend spec string for the persistent caches instead of
        ``cache_dir`` — e.g. ``sqlite:path=cache.db`` keeps both caches in
        one SQLite file (see :mod:`repro.store`).  Conflicts with
        ``cache_dir``.
    max_queue:
        Admission bound — at most this many computations queued or running
        before requests are rejected with a retry-after hint.
    max_line_bytes:
        Per-line frame limit of the wire protocol.
    scheduling, simulation:
        Pre-built services to serve (both or neither).  When given, the
        caller keeps ownership (the daemon will not close them); when
        omitted the daemon builds its own pair sharing one pool and closes
        them on shutdown.
    allow_remote_shutdown:
        Whether the wire-level ``shutdown`` op is honoured.  On by default —
        the daemon binds loopback unless told otherwise, and driver scripts
        (CI, benchmarks) want to stop the server they started; disable it
        when exposing a shared daemon more widely.
    """

    def __init__(
        self,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        n_workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        cache_backend: Optional[str] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        scheduling: Optional[SchedulingService] = None,
        simulation: Optional[SimulationService] = None,
        allow_remote_shutdown: bool = True,
        port_file: Optional[Union[str, Path]] = None,
    ):
        if (scheduling is None) != (simulation is None):
            raise ValueError("pass both scheduling and simulation services, or neither")
        if cache_dir is not None and cache_backend is not None:
            raise ValueError("pass either cache_dir or cache_backend, not both")
        self.host = host
        self.port = port
        self.max_line_bytes = max_line_bytes
        self.allow_remote_shutdown = allow_remote_shutdown
        self.port_file = Path(port_file) if port_file is not None else None
        self._owns_services = scheduling is None
        if scheduling is None:
            root = Path(cache_dir) if cache_dir is not None else None
            scheduling = SchedulingService(
                n_workers=n_workers,
                cache_dir=str(root / SCHEDULE_CACHE_SUBDIR) if root else None,
                cache_backend=cache_backend,
            )
            # One pool for both services: simulation jobs and scheduling jobs
            # are the same kind of CPU-bound pure work, and a single warm
            # pool is the whole point of the daemon.
            simulation = SimulationService(
                n_workers=n_workers,
                cache_dir=str(root / SIM_CACHE_SUBDIR) if root else None,
                cache_backend=cache_backend,
                scheduling=scheduling,
                executor=scheduling._get_executor(),
            )
        self.scheduling = scheduling
        self.simulation = simulation
        #: The daemon's own registry: dispatcher counters, worker-shipped
        #: phase histograms, and the scrape-time server gauges.  The
        #: ``metrics`` RPC merges it with the services' registries.
        self.registry = MetricsRegistry()
        self.dispatcher = Dispatcher(
            scheduling=self.scheduling,
            simulation=self.simulation,
            max_queue=max_queue,
            metrics=self.registry,
        )
        self.protocol_errors = 0
        self.connections_total = 0
        self._connections_open = 0
        self._started_monotonic: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._request_tasks: "set[asyncio.Task]" = set()
        self._connection_tasks: "set[asyncio.Task]" = set()
        self._writers: "set[asyncio.StreamWriter]" = set()
        #: Set once the socket is bound and :attr:`port` is final (threadsafe).
        self.started = threading.Event()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (idempotent)."""
        if self._server is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        if self.port_file is not None:
            self.port_file.write_text(f"{self.port}\n", encoding="utf-8")
        self.started.set()

    async def run(self) -> None:
        """Serve until shutdown is requested, then drain and close."""
        await self.start()
        assert self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            await self._shutdown()

    def request_shutdown(self) -> None:
        """Ask a running server to shut down gracefully (any-thread safe)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            # The loop already closed: the server shut down on its own (e.g.
            # through an in-band shutdown RPC) and there is nothing to stop.
            pass

    async def _shutdown(self) -> None:
        # Refuse new computations first, then stop accepting connections,
        # then let everything already admitted finish and flush.
        self.dispatcher.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.dispatcher.drain()
        if self._request_tasks:
            await asyncio.gather(*tuple(self._request_tasks), return_exceptions=True)
        # Every pending answer is flushed; now hang up on idle connections
        # (their handlers see EOF and finish) and wait for them to wind down,
        # so nothing is left for the event loop to cancel abruptly.
        for writer in tuple(self._writers):
            writer.close()
        if self._connection_tasks:
            await asyncio.wait(tuple(self._connection_tasks), timeout=5)
        if self._owns_services:
            # The simulation service shares the scheduling service's pool
            # (and does not own it); closing the scheduling service last
            # tears the pool down exactly once.
            self.simulation.close()
            self.scheduling.close()

    # -- connections -------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_total += 1
        self._connections_open += 1
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self._writers.add(writer)
        decoder = FrameDecoder(self.max_line_bytes)
        write_lock = asyncio.Lock()
        tasks: "set[asyncio.Task]" = set()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    task = asyncio.ensure_future(
                        self._handle_frame(frame, writer, write_lock)
                    )
                    tasks.add(task)
                    self._request_tasks.add(task)
                    task.add_done_callback(tasks.discard)
                    task.add_done_callback(self._request_tasks.discard)
            # EOF: the client is done sending; finish answering what it sent.
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections_open -= 1
            self._writers.discard(writer)
            if task is not None:
                self._connection_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_frame(
        self, frame, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        try:
            answer = await self._answer(frame)
        except Exception as error:  # a bug, but the daemon must keep serving
            self.protocol_errors += 1
            answer = encode_error(None, ERR_INTERNAL, f"{type(error).__name__}: {error}")
        async with write_lock:
            try:
                writer.write(answer)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # client went away; the work (and the cache) stay warm

    async def _answer(self, frame) -> bytes:
        """Map one frame to exactly one answer line (response or error)."""
        if isinstance(frame, OversizedFrame):
            self.protocol_errors += 1
            return encode_error(
                None,
                ERR_OVERSIZED_LINE,
                f"line of {frame.length} bytes exceeds the "
                f"{self.max_line_bytes}-byte limit",
            )
        try:
            request = decode_request_line(frame)
        except ProtocolError as error:
            self.protocol_errors += 1
            return encode_error(error.tag, error.code, error.message)
        return await self._answer_request(request)

    async def _answer_request(self, request: ServerRequest) -> bytes:
        op, tag = request.op, request.tag
        try:
            if op == OP_SCHEDULE:
                schedule_request = _parse_payload(
                    ScheduleRequest, request.payload, tag=tag
                )
                response = await self.dispatcher.schedule(schedule_request)
                return encode_response(op, tag, response.to_dict())
            if op == OP_SIMULATE:
                sim_request = _parse_payload(SimulationRequest, request.payload, tag=tag)
                response = await self.dispatcher.simulate(sim_request)
                return encode_response(op, tag, response.to_dict())
            if op == OP_STATS:
                return encode_response(op, tag, self.stats())
            if op == OP_HEALTH:
                return encode_response(op, tag, self.health())
            if op == OP_METRICS:
                return encode_response(op, tag, {"text": self.metrics_text()})
            assert op == OP_SHUTDOWN
            if not self.allow_remote_shutdown:
                self.protocol_errors += 1
                return encode_error(
                    tag, ERR_INVALID_REQUEST, "remote shutdown is disabled on this server"
                )
            self.request_shutdown()
            return encode_response(op, tag, {"status": "draining"})
        except ProtocolError as error:
            self.protocol_errors += 1
            return encode_error(error.tag, error.code, error.message)
        except Overloaded as error:
            return encode_error(
                tag,
                ERR_OVERLOADED,
                "admission queue full",
                retry_after_s=error.retry_after_s,
            )
        except Draining:
            return encode_error(tag, ERR_SHUTTING_DOWN, "server is shutting down")
        except Exception as error:  # execution failed; report, keep serving
            return encode_error(tag, ERR_INTERNAL, f"{type(error).__name__}: {error}")

    # -- introspection -----------------------------------------------------------

    def uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return round(time.monotonic() - self._started_monotonic, 3)

    def health(self) -> Dict[str, Any]:
        """Cheap liveness summary (the ``health`` op's payload)."""
        return {
            "status": "draining" if self.dispatcher.draining else "ok",
            "uptime_s": self.uptime_s(),
            "queue_depth": self.dispatcher.queue_depth,
            "pid": os.getpid(),
        }

    def stats(self) -> Dict[str, Any]:
        """Full live statistics (the ``stats`` op's payload)."""
        return {
            "server": {
                "uptime_s": self.uptime_s(),
                "pid": os.getpid(),
                "host": self.host,
                "port": self.port,
                "n_workers": self.scheduling.n_workers,
                "draining": self.dispatcher.draining,
                "connections_open": self._connections_open,
                "connections_total": self.connections_total,
                "protocol_errors": self.protocol_errors,
            },
            **self.dispatcher.stats(),
        }

    def metrics_registries(self) -> "list[MetricsRegistry]":
        """Every distinct registry behind this daemon, deduplicated by identity.

        The dispatcher shares :attr:`registry`; the two services contribute
        their own (and their caches', and the shared scheduling service's) —
        each exactly once, so merging can never double-count.
        """
        registries = [self.registry]
        for service in (self.scheduling, self.simulation):
            for registry in service.metrics_registries():
                if all(registry is not existing for existing in registries):
                    registries.append(registry)
        return registries

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One merged snapshot of everything, server gauges set at scrape time."""
        self.registry.gauge_set(
            SERVER_UPTIME_SECONDS,
            self.uptime_s(),
            help="Seconds since the daemon bound its socket.",
        )
        self.registry.gauge_set(
            SERVER_QUEUE_DEPTH,
            self.dispatcher.queue_depth,
            help="Computations currently queued or running.",
        )
        self.registry.gauge_set(
            SERVER_CONNECTIONS_OPEN,
            self._connections_open,
            help="Open client connections.",
        )
        self.registry.gauge_set(
            SERVER_CONNECTIONS_TOTAL,
            self.connections_total,
            help="Client connections accepted over the daemon's lifetime.",
        )
        return merge_snapshots(
            registry.snapshot() for registry in self.metrics_registries()
        )

    def metrics_text(self) -> str:
        """The ``metrics`` op's payload: Prometheus text exposition."""
        return render(self.metrics_snapshot())


def _parse_payload(request_cls, payload, *, tag: Optional[str]):
    """Parse the inner request envelope, mapping failures to protocol errors."""
    try:
        return request_cls.from_dict(payload)
    except PayloadVersionError as error:
        raise ProtocolError(ERR_VERSION_MISMATCH, str(error), tag=tag)
    except (ValueError, KeyError, TypeError) as error:
        raise ProtocolError(
            ERR_INVALID_REQUEST, f"invalid {request_cls.__name__}: {error}", tag=tag
        )


class ThreadedServer:
    """A :class:`ReproServer` running on a background thread.

    Context-manager form of the daemon for tests, benchmarks and embedding::

        with ThreadedServer(n_workers=2, cache_dir="cache") as server:
            client = ServerClient(server.host, server.port)
            ...

    Entering starts the event loop thread and blocks until the socket is
    bound (so :attr:`server.port <ReproServer.port>` is final); exiting
    requests graceful shutdown and joins the thread.
    """

    def __init__(self, server: Optional[ReproServer] = None, **kwargs):
        if server is not None and kwargs:
            raise ValueError("pass a server or its constructor arguments, not both")
        self.server = server if server is not None else ReproServer(**kwargs)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "ThreadedServer":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.server.run()),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        if not self.server.started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    def __exit__(self, *exc_info) -> None:
        self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=60)
            self._thread = None
