"""Synthetic-system generator reproducing the paper's evaluation workload.

Section V-A of the paper specifies:

* total system utilisation ``U = 0.05 * |Gamma|`` (i.e. 0.05 utilisation per
  task on average) — equivalently, for a target utilisation ``U`` the task
  count is ``|Gamma| = U / 0.05``;
* task utilisations from UUniFast;
* periods drawn uniformly from all periods that give a 1440 ms hyper-period;
* implicit deadlines ``D_i = T_i`` and DMPO priorities;
* timing margin ``theta_i = T_i / 4`` with ``theta_i >= C_i`` enforced;
* ideal offset ``delta_i`` uniform in ``[theta_i, D_i - theta_i]``;
* ``V_max = P_i + 1`` per task and a global ``V_min = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.task import IOTask, TaskSet
from repro.taskgen.periods import PAPER_HYPERPERIOD_MS, draw_periods
from repro.taskgen.uunifast import uunifast_discard

RngLike = Union[int, np.random.Generator, None]

#: Utilisation contributed per task in the paper's sweep (U = 0.05 * |Gamma|).
UTILISATION_PER_TASK: float = 0.05


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic-system generator.

    The defaults match the paper's evaluation setup; the fields exist so that
    ablation studies (different margins, hyper-periods, device counts) can be
    expressed without new code.
    """

    hyperperiod_ms: int = PAPER_HYPERPERIOD_MS
    #: The paper only states that periods are drawn from the divisors of the
    #: 1440 ms hyper-period.  The default range below (48-480 ms) keeps the
    #: period spread moderate, which reproduces the relative schedulability
    #: ordering of Figure 5 (FPS-offline ~1, static below it, FPS-online below
    #: both, GPIOCP collapsing); an unbounded spread makes every non-clairvoyant
    #: method collapse because a single long job can block a 10 ms-deadline task.
    min_period_ms: int = 48
    max_period_ms: Optional[int] = 480
    utilisation_per_task: float = UTILISATION_PER_TASK
    #: theta_i = period / theta_divisor (the paper uses T_i / 4).
    theta_divisor: int = 4
    #: Maximum per-task utilisation accepted from UUniFast.  The paper enforces
    #: theta_i >= C_i, which with theta_i = T_i/4 caps each task at 0.25.
    max_task_utilisation: float = 0.25
    #: Global minimum quality V_min applied to every task.
    v_min: float = 1.0
    #: Number of I/O devices; tasks are assigned to devices round-robin.
    n_devices: int = 1
    device_prefix: str = "dev"
    task_prefix: str = "tau"


class SystemGenerator:
    """Generates random timed-I/O task sets following the paper's recipe."""

    def __init__(self, config: Optional[GeneratorConfig] = None, rng: RngLike = None):
        self.config = config or GeneratorConfig()
        self._rng = _as_rng(rng)

    # -- public API ---------------------------------------------------------

    def n_tasks_for_utilisation(self, utilisation: float) -> int:
        """Task count used by the paper for a target utilisation (``U / 0.05``)."""
        n = int(round(utilisation / self.config.utilisation_per_task))
        return max(1, n)

    def generate(
        self,
        utilisation: float,
        n_tasks: Optional[int] = None,
    ) -> TaskSet:
        """Generate one synthetic task set with the given total utilisation.

        Parameters
        ----------
        utilisation:
            Target total system utilisation (e.g. 0.2 … 0.9).
        n_tasks:
            Number of tasks.  Defaults to the paper's rule ``U / 0.05``.
        """
        if utilisation <= 0:
            raise ValueError("utilisation must be positive")
        cfg = self.config
        if n_tasks is None:
            n_tasks = self.n_tasks_for_utilisation(utilisation)
        if n_tasks <= 0:
            raise ValueError("n_tasks must be positive")

        utilisations = uunifast_discard(
            n_tasks,
            utilisation,
            self._rng,
            max_task_utilisation=cfg.max_task_utilisation,
        )
        periods = draw_periods(
            n_tasks,
            self._rng,
            hyperperiod_ms=cfg.hyperperiod_ms,
            min_period_ms=cfg.min_period_ms,
            max_period_ms=cfg.max_period_ms,
        )

        tasks: List[IOTask] = []
        for idx, (task_util, period) in enumerate(zip(utilisations, periods)):
            tasks.append(self._make_task(idx, task_util, period))

        task_set = TaskSet(tasks).assign_dmpo_priorities()
        return self._apply_value_model(task_set)

    def generate_many(
        self,
        utilisation: float,
        count: int,
        n_tasks: Optional[int] = None,
    ) -> List[TaskSet]:
        """Generate ``count`` independent synthetic task sets."""
        if count <= 0:
            raise ValueError("count must be positive")
        return [self.generate(utilisation, n_tasks) for _ in range(count)]

    # -- internals ------------------------------------------------------------

    def _make_task(self, index: int, task_utilisation: float, period: int) -> IOTask:
        cfg = self.config
        theta = period // cfg.theta_divisor
        wcet = max(1, int(round(task_utilisation * period)))
        # The paper enforces theta_i >= C_i; with the UUniFast utilisation cap
        # this almost always holds, and the clamp keeps the rare boundary case
        # consistent rather than silently generating an invalid task.
        wcet = min(wcet, theta) if theta >= 1 else wcet
        deadline = period
        lo, hi = theta, deadline - theta
        if hi < lo:
            delta = deadline // 2
        else:
            delta = int(self._rng.integers(lo, hi + 1))
        device = f"{cfg.device_prefix}{index % cfg.n_devices}"
        return IOTask(
            name=f"{cfg.task_prefix}{index}",
            wcet=wcet,
            period=period,
            deadline=deadline,
            priority=0,
            ideal_offset=delta,
            theta=theta,
            device=device,
            v_max=cfg.v_min + 1.0,
            v_min=cfg.v_min,
        )

    def _apply_value_model(self, task_set: TaskSet) -> TaskSet:
        """Set ``V_max = P_i + 1`` after DMPO priorities have been assigned."""
        from dataclasses import replace

        cfg = self.config
        tasks = [
            replace(task, v_max=float(task.priority) + 1.0, v_min=cfg.v_min)
            for task in task_set
        ]
        return TaskSet(tasks)
