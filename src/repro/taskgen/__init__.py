"""Synthetic task-set generation (Section V-A of the paper).

Reproduces the paper's evaluation workload: UUniFast utilisation generation,
periods drawn uniformly from the divisors of a 1440 ms hyper-period, implicit
deadlines, deadline-monotonic priorities, timing margins ``theta_i = T_i / 4``
and ideal offsets ``delta_i`` drawn uniformly from ``[theta_i, D_i - theta_i]``,
with ``V_max = P_i + 1`` and a global ``V_min = 1``.
"""

from repro.taskgen.generator import SystemGenerator, GeneratorConfig
from repro.taskgen.periods import PAPER_HYPERPERIOD_MS, candidate_periods, draw_periods
from repro.taskgen.uunifast import uunifast, uunifast_discard

__all__ = [
    "uunifast",
    "uunifast_discard",
    "candidate_periods",
    "draw_periods",
    "PAPER_HYPERPERIOD_MS",
    "SystemGenerator",
    "GeneratorConfig",
]
