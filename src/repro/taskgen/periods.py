"""Period generation constrained to a fixed hyper-period.

The paper draws task periods "randomly in a uniform distribution, from all
periods that lead to a hyper-period of 1440 ms" (Section V-A).  In other
words, the candidate periods are divisors of 1440 ms; drawing any subset of
them yields a hyper-period that divides (and in practice equals) 1440 ms.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.core.task import MS

RngLike = Union[int, np.random.Generator, None]

#: The paper's hyper-period, in milliseconds.
PAPER_HYPERPERIOD_MS: int = 1440


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def divisors(value: int) -> List[int]:
    """All positive divisors of ``value`` in increasing order."""
    if value <= 0:
        raise ValueError("value must be positive")
    small: List[int] = []
    large: List[int] = []
    d = 1
    while d * d <= value:
        if value % d == 0:
            small.append(d)
            if d != value // d:
                large.append(value // d)
        d += 1
    return small + large[::-1]


def candidate_periods(
    hyperperiod_ms: int = PAPER_HYPERPERIOD_MS,
    *,
    min_period_ms: int = 10,
    max_period_ms: int | None = None,
) -> List[int]:
    """Candidate periods (in microseconds) that divide the given hyper-period.

    ``min_period_ms`` bounds the smallest admissible period (very short periods
    release thousands of jobs per hyper-period, which the paper's job-level
    offline schedulers would never face for GPIO workloads); ``max_period_ms``
    defaults to the hyper-period itself.
    """
    if max_period_ms is None:
        max_period_ms = hyperperiod_ms
    periods = [
        d * MS
        for d in divisors(hyperperiod_ms)
        if min_period_ms <= d <= max_period_ms
    ]
    if not periods:
        raise ValueError(
            f"no divisor of {hyperperiod_ms} ms lies in "
            f"[{min_period_ms}, {max_period_ms}] ms"
        )
    return periods


def draw_periods(
    n_tasks: int,
    rng: RngLike = None,
    *,
    hyperperiod_ms: int = PAPER_HYPERPERIOD_MS,
    min_period_ms: int = 10,
    max_period_ms: int | None = None,
) -> List[int]:
    """Draw ``n_tasks`` periods (microseconds) uniformly from the candidate set."""
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    generator = _as_rng(rng)
    candidates = candidate_periods(
        hyperperiod_ms,
        min_period_ms=min_period_ms,
        max_period_ms=max_period_ms,
    )
    indices = generator.integers(0, len(candidates), size=n_tasks)
    return [candidates[int(i)] for i in indices]
