"""UUniFast utilisation generation (Bini & Buttazzo, 2005).

The paper generates per-task utilisations with the UUniFast algorithm and a
total system utilisation ``U = 0.05 * |Gamma|`` (Section V-A).  UUniFast draws
an unbiased sample from the simplex of task utilisations summing to ``U``.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def uunifast(n_tasks: int, total_utilisation: float, rng: RngLike = None) -> List[float]:
    """Draw ``n_tasks`` utilisations summing to ``total_utilisation``.

    Implements the classic UUniFast recurrence: ``sum_{i+1} = sum_i * r^(1/(n-i))``
    with ``r`` uniform in (0, 1), which yields a uniform sample over the
    utilisation simplex.

    Raises
    ------
    ValueError
        If ``n_tasks`` is not positive or ``total_utilisation`` is not positive.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    if total_utilisation <= 0:
        raise ValueError("total_utilisation must be positive")
    generator = _as_rng(rng)
    utilisations: List[float] = []
    remaining = float(total_utilisation)
    for i in range(1, n_tasks):
        next_remaining = remaining * generator.random() ** (1.0 / (n_tasks - i))
        utilisations.append(remaining - next_remaining)
        remaining = next_remaining
    utilisations.append(remaining)
    return utilisations


def uunifast_discard(
    n_tasks: int,
    total_utilisation: float,
    rng: RngLike = None,
    *,
    max_task_utilisation: float = 1.0,
    max_attempts: int = 1000,
) -> List[float]:
    """UUniFast with rejection of samples containing a task above ``max_task_utilisation``.

    For single-device partitions no task may exceed a utilisation of 1.0 (it
    could never meet its deadline); the discard variant re-samples until every
    per-task utilisation is valid.
    """
    generator = _as_rng(rng)
    for _ in range(max_attempts):
        sample = uunifast(n_tasks, total_utilisation, generator)
        if all(u <= max_task_utilisation for u in sample):
            return sample
    raise RuntimeError(
        f"could not draw a valid UUniFast sample in {max_attempts} attempts "
        f"(n={n_tasks}, U={total_utilisation}, cap={max_task_utilisation})"
    )
