"""2-D mesh topology for the NoC model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

#: A node is addressed by its (x, y) mesh coordinates.
NodeId = Tuple[int, int]


@dataclass(frozen=True)
class MeshTopology:
    """A ``width x height`` 2-D mesh of routers.

    Each router has a *home port* to which a CPU tile, the I/O controller or a
    memory controller can be attached, and links to its north/south/east/west
    neighbours.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("mesh dimensions must be positive")

    @property
    def n_nodes(self) -> int:
        return self.width * self.height

    def nodes(self) -> Iterator[NodeId]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def contains(self, node: NodeId) -> bool:
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbours(self, node: NodeId) -> List[NodeId]:
        """Neighbouring routers of ``node`` (2-4 depending on position)."""
        if not self.contains(node):
            raise ValueError(f"node {node} is outside the {self.width}x{self.height} mesh")
        x, y = node
        candidates = [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]
        return [candidate for candidate in candidates if self.contains(candidate)]

    def manhattan_distance(self, source: NodeId, destination: NodeId) -> int:
        """Hop count of a minimal (e.g. XY) route between two nodes."""
        for node in (source, destination):
            if not self.contains(node):
                raise ValueError(f"node {node} is outside the mesh")
        return abs(source[0] - destination[0]) + abs(source[1] - destination[1])

    def node_index(self, node: NodeId) -> int:
        """Linear index of a node (row-major), useful for tables and matrices."""
        if not self.contains(node):
            raise ValueError(f"node {node} is outside the mesh")
        x, y = node
        return y * self.width + x
