"""The NoC network: topology + routers + packet transport."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.noc.packet import Packet
from repro.noc.router import Router
from repro.noc.routing import xy_route
from repro.noc.topology import MeshTopology, NodeId
from repro.sim.trace import TraceRecorder


class NoCNetwork:
    """A 2-D mesh NoC with XY routing and per-link FIFO arbitration.

    The network is used in two roles:

    * **configuration traffic** — pre-loading I/O tasks and schedules into the
      controller (Phases 1-2 of the paper), where latency is irrelevant;
    * **run-time traffic** — I/O requests instigated by remote CPUs and I/O
      responses travelling back, where the accumulated per-hop latency and
      arbitration jitter are exactly what destroys timing accuracy when no
      dedicated controller is used.
    """

    def __init__(
        self,
        topology: MeshTopology,
        *,
        routing_delay: int = 2,
        flit_delay: int = 1,
        injection_delay: int = 1,
        ejection_delay: int = 1,
        trace: Optional[TraceRecorder] = None,
    ):
        self.topology = topology
        self.routers: Dict[NodeId, Router] = {
            node: Router(node=node, routing_delay=routing_delay, flit_delay=flit_delay)
            for node in topology.nodes()
        }
        self.injection_delay = injection_delay
        self.ejection_delay = ejection_delay
        self.trace = trace
        self.delivered: List[Packet] = []

    def router(self, node: NodeId) -> Router:
        return self.routers[node]

    def send(self, packet: Packet, time: int) -> int:
        """Transport ``packet`` starting at ``time``; returns the delivery time.

        The packet is injected at its source router, forwarded hop by hop along
        the XY route (waiting whenever an output link is busy), and ejected at
        the destination's home port.
        """
        packet.injected_at = int(time)
        route = xy_route(packet.source, packet.destination, self.topology)
        current_time = packet.injected_at + self.injection_delay

        for hop_index in range(len(route) - 1):
            router = self.routers[route[hop_index]]
            next_node = route[hop_index + 1]
            _, current_time = router.forward(packet, next_node, current_time)

        current_time += self.ejection_delay
        packet.delivered_at = current_time
        self.delivered.append(packet)
        if self.trace is not None:
            self.trace.record(
                current_time,
                source=f"noc{packet.source}->{packet.destination}",
                kind="packet-delivered",
                packet_id=packet.packet_id,
                kind_of_packet=packet.kind,
                latency=packet.latency,
                hops=len(route) - 1,
            )
        return current_time

    # -- statistics ------------------------------------------------------------

    def latencies(self, kind: Optional[str] = None) -> List[int]:
        """End-to-end latencies of delivered packets (optionally filtered by kind)."""
        return [
            packet.latency
            for packet in self.delivered
            if packet.latency is not None and (kind is None or packet.kind == kind)
        ]

    def mean_latency(self, kind: Optional[str] = None) -> float:
        values = self.latencies(kind)
        return sum(values) / len(values) if values else 0.0

    def max_latency(self, kind: Optional[str] = None) -> int:
        values = self.latencies(kind)
        return max(values) if values else 0

    def total_blocking(self) -> int:
        """Total arbitration blocking accumulated across all routers."""
        return sum(router.total_blocking for router in self.routers.values())
