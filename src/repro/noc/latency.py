"""Analytical communication-latency bounds for NoC I/O requests.

The paper motivates the dedicated controller by the substantial and variable
on-chip communication latency of sending an I/O request from a CPU to an I/O
controller across the mesh (Section I).  This module provides a simple
worst-case latency model in the spirit of priority-unaware wormhole analysis:
a base hop latency plus a contention term per shared link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.noc.packet import Packet
from repro.noc.routing import xy_route
from repro.noc.topology import MeshTopology, NodeId


@dataclass(frozen=True)
class CommunicationLatencyModel:
    """Parameters of the analytical latency bound."""

    routing_delay: int = 2
    flit_delay: int = 1
    injection_delay: int = 1
    ejection_delay: int = 1

    def no_contention_latency(self, hops: int, size_flits: int) -> int:
        """Latency of a packet crossing ``hops`` links with no contention."""
        per_hop = self.routing_delay + size_flits * self.flit_delay
        return self.injection_delay + hops * per_hop + self.ejection_delay

    def contention_bound(
        self, hops: int, size_flits: int, interfering_sizes: Iterable[int]
    ) -> int:
        """Upper bound with each interfering packet blocking at most once per route.

        This mirrors the single-blocking-per-link argument of FIFO-arbitrated
        packet-switched meshes: every interfering packet can delay the request
        by at most its own service time on one shared link.
        """
        base = self.no_contention_latency(hops, size_flits)
        interference = sum(
            self.routing_delay + size * self.flit_delay for size in interfering_sizes
        )
        return base + interference


def worst_case_latency(
    source: NodeId,
    destination: NodeId,
    topology: MeshTopology,
    *,
    size_flits: int = 4,
    interfering_sizes: Iterable[int] = (),
    model: CommunicationLatencyModel | None = None,
) -> int:
    """Worst-case latency bound of one request from ``source`` to ``destination``."""
    model = model or CommunicationLatencyModel()
    hops = len(xy_route(source, destination, topology)) - 1
    return model.contention_bound(hops, size_flits, interfering_sizes)
