"""Packets exchanged over the NoC."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.noc.topology import NodeId

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A NoC packet (modelled at packet granularity, sized in flits).

    The payload carries I/O-related messages: pre-load commands, schedule
    entries, run-time I/O requests and I/O responses.
    """

    source: NodeId
    destination: NodeId
    size_flits: int = 4
    kind: str = "data"
    payload: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    injected_at: Optional[int] = None
    delivered_at: Optional[int] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_flits <= 0:
            raise ValueError("packet size must be at least one flit")

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency, available once the packet has been delivered."""
        if self.injected_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at
