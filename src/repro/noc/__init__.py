"""Network-on-Chip substrate.

The paper deploys the I/O controller at the home port of a router in a
NoC-based many-core system (Figure 3).  This sub-package provides a 2-D mesh
NoC model — topology, XY routing, per-router arbitration and link latency —
used to quantify the communication latency and jitter an I/O request suffers
when it is instigated by a *remote CPU* rather than by the dedicated
controller, which is the architectural motivation of the paper.
"""

from repro.noc.latency import CommunicationLatencyModel, worst_case_latency
from repro.noc.network import NoCNetwork
from repro.noc.packet import Packet
from repro.noc.router import Router
from repro.noc.routing import xy_route
from repro.noc.topology import MeshTopology, NodeId

__all__ = [
    "MeshTopology",
    "NodeId",
    "Packet",
    "Router",
    "xy_route",
    "NoCNetwork",
    "CommunicationLatencyModel",
    "worst_case_latency",
]
