"""Dimension-ordered (XY) routing."""

from __future__ import annotations

from typing import List

from repro.noc.topology import MeshTopology, NodeId


def xy_route(source: NodeId, destination: NodeId, topology: MeshTopology) -> List[NodeId]:
    """The XY route from ``source`` to ``destination``, inclusive of both ends.

    Packets first travel along the X dimension, then along Y — the standard
    deadlock-free dimension-ordered routing for 2-D meshes.
    """
    for node in (source, destination):
        if not topology.contains(node):
            raise ValueError(f"node {node} is outside the mesh")
    route: List[NodeId] = [source]
    x, y = source
    dst_x, dst_y = destination
    while x != dst_x:
        x += 1 if dst_x > x else -1
        route.append((x, y))
    while y != dst_y:
        y += 1 if dst_y > y else -1
        route.append((x, y))
    return route
