"""Router model: per-output-link FIFO arbitration with configurable latencies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.noc.packet import Packet
from repro.noc.topology import NodeId


@dataclass
class Router:
    """A single mesh router.

    The model works at packet granularity: forwarding a packet over an output
    link occupies that link for ``routing_delay + size_flits * flit_delay``
    time units, and packets competing for the same output link are serialised
    in arrival order (FIFO arbitration, ties broken by packet priority).  This
    captures the two effects the paper cares about — per-hop latency and
    arbitration-induced jitter — without flit-level detail.
    """

    node: NodeId
    #: Fixed per-hop routing/arbitration overhead (time units per packet).
    routing_delay: int = 2
    #: Link traversal time per flit (time units).
    flit_delay: int = 1
    #: Earliest time each output link becomes free again, keyed by neighbour.
    _link_free_at: Dict[NodeId, int] = field(default_factory=dict)
    #: Per-link counters of forwarded packets and accumulated blocking.
    forwarded: int = 0
    total_blocking: int = 0

    def service_time(self, packet: Packet) -> int:
        """Time the packet occupies an output link of this router."""
        return self.routing_delay + packet.size_flits * self.flit_delay

    def forward(self, packet: Packet, to: NodeId, arrival_time: int) -> Tuple[int, int]:
        """Forward ``packet`` towards neighbour ``to``.

        Returns ``(start_time, departure_time)``: the packet starts crossing
        the link once the link is free and leaves the router at
        ``start + service_time``.
        """
        link_free = self._link_free_at.get(to, 0)
        start = max(arrival_time, link_free)
        blocking = start - arrival_time
        departure = start + self.service_time(packet)
        self._link_free_at[to] = departure
        self.forwarded += 1
        self.total_blocking += blocking
        return start, departure

    def link_utilisation(self, horizon: int) -> Dict[NodeId, float]:
        """Fraction of ``[0, horizon)`` each output link has been busy (approximate)."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return {
            neighbour: min(1.0, busy_until / horizon)
            for neighbour, busy_until in self._link_free_at.items()
        }
