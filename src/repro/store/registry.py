"""Backend registry: ``name:key=value`` spec strings → live backends.

Backend specs reuse the :class:`~repro.service.spec.SchedulerSpec` grammar —
the same ``name:key=value,...`` strings, typed values included — so one
parser (and one set of round-trip guarantees) covers scheduler specs and
storage specs alike::

    directory:root=/var/cache/repro      # one JSON file per key under root
    sqlite:path=/var/cache/repro.db      # everything in one SQLite file
    sqlite:path=cache.db,timeout=60.0    # with a longer writer busy-timeout

As a convenience, a spec with no ``:`` and no registered backend name is
treated as a bare path: ``cache.db``/``cache.sqlite`` opens the SQLite
backend, anything else the directory backend.  That keeps
``--cache-backend my-cache-dir`` working the way ``--cache-dir`` users
expect.

Third-party backends register through :func:`register_backend`; the two
built-ins are registered at import time by :mod:`repro.store`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple, Union

from repro.store.backends import (
    SCHEDULE_CACHE_SUBDIR,
    SIM_CACHE_SUBDIR,
    CacheBackend,
    DirectoryBackend,
    SqliteBackend,
)

#: A factory takes the spec's typed options plus ``subdir`` — the logical
#: namespace (``schedules`` / ``sim-responses``) the caller wants.  Backends
#: with physical sub-locations (directory) honour it; single-file backends
#: (sqlite) ignore it because their entries carry a ``kind`` column instead.
BackendFactory = Callable[..., CacheBackend]


class _Registration(NamedTuple):
    factory: BackendFactory
    description: str


_REGISTRY: Dict[str, _Registration] = {}

#: File suffixes that make a bare (grammar-free) path mean "sqlite".
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


def register_backend(
    name: str, factory: BackendFactory, *, description: str = ""
) -> None:
    """Register ``factory`` under ``name`` (replacing any previous owner)."""
    _REGISTRY[name] = _Registration(factory=factory, description=description)


def backend_names() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def format_backend_listing() -> str:
    """One ``name — description`` line per registered backend."""
    return "\n".join(
        f"  {name} — {_REGISTRY[name].description}" for name in backend_names()
    )


def _directory_factory(*, subdir: Optional[str] = None, **options: Any) -> CacheBackend:
    root = options.pop("root", None)
    if root is None:
        raise ValueError("directory backend requires a root= option")
    if options:
        raise ValueError(
            f"directory backend got unknown options: {sorted(options)}"
        )
    path = Path(str(root))
    if subdir:
        path = path / subdir
    return DirectoryBackend(path)


def _sqlite_factory(*, subdir: Optional[str] = None, **options: Any) -> CacheBackend:
    path = options.pop("path", None)
    if path is None:
        raise ValueError("sqlite backend requires a path= option")
    del subdir  # one file holds every namespace; entries carry their kind
    kwargs: Dict[str, Any] = {}
    for key in ("timeout", "wal", "synchronous"):
        if key in options:
            kwargs[key] = options.pop(key)
    if options:
        raise ValueError(f"sqlite backend got unknown options: {sorted(options)}")
    return SqliteBackend(Path(str(path)), **kwargs)


register_backend(
    "directory",
    _directory_factory,
    description="one JSON file per key under root= (the classic cache layout)",
)
register_backend(
    "sqlite",
    _sqlite_factory,
    description="all entries in one SQLite file at path= (WAL, concurrency-safe)",
)


def parse_backend_spec(text: str) -> Tuple[str, Dict[str, Any]]:
    """Parse a backend spec string into ``(name, typed options)``.

    Applies the bare-path convenience: text that is neither a registered
    backend name nor valid spec grammar is interpreted as a filesystem path
    (sqlite for ``.db``/``.sqlite``/``.sqlite3`` suffixes, directory
    otherwise).
    """
    # Lazy import: repro.service imports repro.store for its cache backends.
    from repro.service.spec import SchedulerSpec

    if not isinstance(text, str) or not text.strip():
        raise ValueError(f"invalid backend spec: {text!r}")
    text = text.strip()
    name, sep, _ = text.partition(":")
    if not sep and name not in _REGISTRY:
        # A bare path like "my-cache-dir" or "cache.db".
        if text.lower().endswith(_SQLITE_SUFFIXES):
            return "sqlite", {"path": text}
        return "directory", {"root": text}
    try:
        spec = SchedulerSpec.parse(text)
    except ValueError as error:
        raise ValueError(f"invalid backend spec {text!r}: {error}") from error
    return spec.name, spec.options_dict()


def create_backend(
    spec: Union[str, CacheBackend], *, subdir: Optional[str] = None
) -> CacheBackend:
    """Open the backend described by ``spec``.

    ``subdir`` names the logical cache namespace (see :data:`BackendFactory`).
    A live :class:`CacheBackend` passes through unchanged (``subdir`` is then
    the caller's responsibility).
    """
    if isinstance(spec, CacheBackend):
        return spec
    name, options = parse_backend_spec(spec)
    registration = _REGISTRY.get(name)
    if registration is None:
        raise ValueError(
            f"unknown cache backend {name!r} (available: {', '.join(backend_names())})"
        )
    return registration.factory(subdir=subdir, **options)


def schedule_backend(spec: Union[str, CacheBackend]) -> CacheBackend:
    """Open ``spec`` as the schedule-cache namespace."""
    return create_backend(spec, subdir=SCHEDULE_CACHE_SUBDIR)


def simulation_backend(spec: Union[str, CacheBackend]) -> CacheBackend:
    """Open ``spec`` as the simulation-response-cache namespace."""
    return create_backend(spec, subdir=SIM_CACHE_SUBDIR)
