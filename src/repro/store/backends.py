"""Cache storage backends: where content-addressed payloads physically live.

A :class:`CacheBackend` is the persistence half of the content-addressed
caches (:class:`repro.service.cache.ScheduleCache` and its subclasses): a flat
``key -> versioned JSON payload`` store with first-write-wins semantics.  The
caches keep everything *about* the payloads — the in-memory layer, hit/miss
accounting, the ``{kind, version, data}`` envelope and its version
protection — so a backend never needs to understand what it stores; it only
has to persist dicts durably and tolerate concurrent writers.

Two implementations ship:

:class:`DirectoryBackend`
    One JSON file per key (``<root>/<key>.json``, written atomically via
    rename) — the historical cache layout, trivially inspectable, safe for
    concurrent processes, but bounded by what the filesystem tolerates as a
    directory grows to millions of entries.

:class:`SqliteBackend`
    One SQLite file in WAL mode: a single writer at a time (enforced by
    SQLite's own write lock; concurrent writers queue on ``busy_timeout``)
    with any number of concurrent readers — including readers in other
    processes, e.g. shard workers of one campaign sharing one cache file.
    Entries carry their payload ``kind`` in an indexed column, so one file
    can hold the schedule *and* the simulation cache without either misreading
    the other, and ``python -m repro.store`` can answer per-kind questions
    with one query.

Backends are constructed from ``name:key=value`` spec strings through
:func:`repro.store.registry.create_backend`; :meth:`CacheBackend.spec`
returns the canonical string that re-opens the same store (this is how pool
workers re-attach to the cache of the dispatching service).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.serialization import atomic_write_json, canonical_json

#: Subdirectories of a shared cache root holding the two content-addressed
#: caches.  Every consumer — the batch CLIs, the serving daemon, campaign
#: shard workers — agrees on this layout, so they all warm each other through
#: the same ``--cache-dir``/``--cache-backend``.  The SQLite backend ignores
#: the split: one file holds both caches, told apart by the ``kind`` column.
SCHEDULE_CACHE_SUBDIR = "schedules"
SIM_CACHE_SUBDIR = "sim-responses"


class CacheBackend(ABC):
    """A flat ``key -> versioned JSON payload`` store (see the module docs).

    Keys are content hashes (hex strings); payloads are the caches'
    ``{kind, version, data}`` envelopes.  All methods are safe to call from
    multiple threads of one process, and the on-disk form tolerates multiple
    processes sharing one store (every writer of a given key holds an
    identical, content-addressed payload).
    """

    #: Registry name of this backend (``directory``, ``sqlite``, ...).
    name: str = "abstract"

    # -- the core key/value surface ----------------------------------------------

    @abstractmethod
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` (missing *or* corrupt)."""

    @abstractmethod
    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (idempotent: first complete write
        wins; concurrent writers of one key always hold identical payloads)."""

    def get_many(self, keys: Iterable[str]) -> Dict[str, Dict[str, Any]]:
        """Payloads for every *present* key of ``keys`` (missing/corrupt omitted).

        Each distinct key is consulted once, regardless of duplicates in the
        iterable.  The generic implementation loops over :meth:`get`; backends
        with a query interface (SQLite) answer a whole batch per statement.
        """
        found: Dict[str, Dict[str, Any]] = {}
        for key in dict.fromkeys(keys):
            payload = self.get(key)
            if payload is not None:
                found[key] = payload
        return found

    def put_many(self, items: Iterable[Tuple[str, Dict[str, Any]]]) -> None:
        """Persist a batch of ``(key, payload)`` pairs (same contract as :meth:`put`).

        The generic implementation loops over :meth:`put`; backends with
        transactions (SQLite) write the whole batch in one.
        """
        for key, payload in items:
            self.put(key, payload)

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove one entry; ``True`` when something was removed."""

    @abstractmethod
    def keys(self) -> List[str]:
        """Every stored key, sorted (corrupt entries included)."""

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # -- introspection -----------------------------------------------------------

    @abstractmethod
    def stats(self) -> Dict[str, Any]:
        """Cheap live summary: ``{name, location, entries, size_bytes}``."""

    def kind_counts(self) -> Dict[str, int]:
        """Entries per payload ``kind`` (may scan; ``""`` counts unreadable).

        The generic implementation reads every payload; backends with a kind
        index (SQLite) answer from one query instead.
        """
        counts: Dict[str, int] = {}
        for key in self.keys():
            payload = self.get(key)
            kind = payload.get("kind") if isinstance(payload, dict) else None
            label = kind if isinstance(kind, str) else ""
            counts[label] = counts.get(label, 0) + 1
        return counts

    # -- maintenance -------------------------------------------------------------

    def prune(self, keys: Optional[Iterable[str]] = None) -> int:
        """Delete entries; returns how many were removed.

        With an explicit ``keys`` iterable, exactly those entries go.  With
        ``None``, only *corrupt* entries (unreadable payloads that can never
        be served) are removed — the safe default for a content-addressed
        cache, where every healthy entry is still correct.
        """
        if keys is None:
            keys = [key for key in self.keys() if self.get(key) is None]
        return sum(1 for key in keys if self.delete(key))

    # -- lifecycle ---------------------------------------------------------------

    def spec(self) -> Optional[str]:
        """Canonical ``name:key=value`` string re-opening this store.

        ``None`` when the store cannot be re-opened from a string (e.g. its
        location is not representable in the spec grammar) — callers then
        fall back to not sharing it across process boundaries.
        """
        return None

    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def __enter__(self) -> "CacheBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _format_spec(name: str, **options: Any) -> Optional[str]:
    """``name:key=value`` spec text, or ``None`` if a value is unrepresentable."""
    # Imported lazily: the spec grammar lives with the scheduler specs, and
    # importing it at module load would cycle through the service package.
    from repro.service.spec import format_option_value

    try:
        rendered = ",".join(
            f"{key}={format_option_value(value)}" for key, value in sorted(options.items())
        )
    except ValueError:
        return None
    return f"{name}:{rendered}" if rendered else name


class DirectoryBackend(CacheBackend):
    """One atomically-written JSON file per key under a root directory.

    Byte-for-byte the cache layout that predates the backend interface, so
    existing cache directories keep working unchanged.  Concurrent processes
    sharing one directory are safe: every writer goes through its own unique
    temp file + atomic rename, and a directory deleted underneath a writer is
    recreated instead of crashing.
    """

    name = "directory"

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        try:
            atomic_write_json(self._path(key), payload)
        except FileNotFoundError:
            # The root vanished (or was never created) underneath us — e.g. a
            # concurrent cleanup, or a writer racing the first mkdir.
            # Recreate it and retry once; a second failure is a real error.
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_json(self._path(key), payload)

    def delete(self, key: str) -> bool:
        try:
            os.unlink(self._path(key))
            return True
        except OSError:
            return False

    def keys(self) -> List[str]:
        try:
            return sorted(path.stem for path in self.root.glob("*.json"))
        except OSError:
            return []

    def stats(self) -> Dict[str, Any]:
        entries = 0
        size_bytes = 0
        try:
            for path in self.root.glob("*.json"):
                entries += 1
                try:
                    size_bytes += path.stat().st_size
                except OSError:
                    pass
        except OSError:
            pass
        return {
            "name": self.name,
            "location": str(self.root),
            "entries": entries,
            "size_bytes": size_bytes,
        }

    def spec(self) -> Optional[str]:
        return _format_spec(self.name, root=str(self.root))


class SqliteBackend(CacheBackend):
    """All entries in one SQLite file (WAL mode, single-writer journal).

    The file scales to millions of entries where a file-per-key directory
    drowns the filesystem.  Writes go through SQLite's write-ahead log: one
    writer at a time (others queue on ``busy_timeout``), readers — in this
    process or any other — never block.  ``INSERT OR IGNORE`` gives the
    caches' first-write-wins discipline a transactional form: once a key is
    in, no writer can replace it, so a reader can never observe a torn entry.

    One connection per backend instance, shared across threads behind a lock
    (SQLite objects must not be used concurrently from multiple threads
    without one).
    """

    name = "sqlite"

    def __init__(
        self,
        path: Union[str, Path],
        *,
        timeout: float = 30.0,
        wal: bool = True,
        synchronous: str = "normal",
    ):
        if synchronous.lower() not in ("off", "normal", "full", "extra"):
            raise ValueError(
                f"invalid synchronous mode {synchronous!r} "
                "(expected off/normal/full/extra)"
            )
        self.path = Path(path)
        self.timeout = float(timeout)
        self.wal = bool(wal)
        self.synchronous = synchronous.lower()
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            str(self.path),
            timeout=self.timeout,
            check_same_thread=False,
            isolation_level=None,  # autocommit: every statement is its own txn
        )
        with self._lock:
            if self.wal:
                self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute(f"PRAGMA synchronous={self.synchronous.upper()}")
            self._connection.execute(
                f"PRAGMA busy_timeout={int(self.timeout * 1000)}"
            )
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "  key TEXT PRIMARY KEY,"
                "  kind TEXT NOT NULL DEFAULT '',"
                "  version INTEGER NOT NULL DEFAULT 0,"
                "  payload TEXT NOT NULL"
                ")"
            )
            self._connection.execute(
                "CREATE INDEX IF NOT EXISTS entries_kind ON entries(kind)"
            )

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._connection.execute(
                "SELECT payload FROM entries WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        kind = payload.get("kind")
        version = payload.get("version")
        with self._lock:
            self._connection.execute(
                "INSERT OR IGNORE INTO entries (key, kind, version, payload) "
                "VALUES (?, ?, ?, ?)",
                (
                    key,
                    kind if isinstance(kind, str) else "",
                    version if isinstance(version, int) else 0,
                    canonical_json(payload),
                ),
            )

    #: Maximum bound variables per batched SELECT (SQLite's historical limit
    #: is 999; stay comfortably below it).
    _MAX_QUERY_VARS = 500

    def get_many(self, keys: Iterable[str]) -> Dict[str, Dict[str, Any]]:
        distinct = list(dict.fromkeys(keys))
        found: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            for lo in range(0, len(distinct), self._MAX_QUERY_VARS):
                chunk = distinct[lo:lo + self._MAX_QUERY_VARS]
                placeholders = ",".join("?" * len(chunk))
                rows = self._connection.execute(
                    f"SELECT key, payload FROM entries WHERE key IN ({placeholders})",
                    chunk,
                ).fetchall()
                for key, raw in rows:
                    try:
                        payload = json.loads(raw)
                    except ValueError:
                        continue
                    if isinstance(payload, dict):
                        found[key] = payload
        return found

    def put_many(self, items: Iterable[Tuple[str, Dict[str, Any]]]) -> None:
        rows = []
        for key, payload in items:
            kind = payload.get("kind")
            version = payload.get("version")
            rows.append(
                (
                    key,
                    kind if isinstance(kind, str) else "",
                    version if isinstance(version, int) else 0,
                    canonical_json(payload),
                )
            )
        if not rows:
            return
        with self._lock:
            self._connection.execute("BEGIN")
            try:
                self._connection.executemany(
                    "INSERT OR IGNORE INTO entries (key, kind, version, payload) "
                    "VALUES (?, ?, ?, ?)",
                    rows,
                )
            except BaseException:
                self._connection.execute("ROLLBACK")
                raise
            self._connection.execute("COMMIT")

    def delete(self, key: str) -> bool:
        with self._lock:
            cursor = self._connection.execute(
                "DELETE FROM entries WHERE key = ?", (key,)
            )
            return cursor.rowcount > 0

    def keys(self) -> List[str]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT key FROM entries ORDER BY key"
            ).fetchall()
        return [row[0] for row in rows]

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()
        return int(count)

    def stats(self) -> Dict[str, Any]:
        size_bytes = 0
        # WAL sidecars hold committed-but-uncheckpointed data; count them in.
        for path in (self.path, Path(f"{self.path}-wal"), Path(f"{self.path}-shm")):
            try:
                size_bytes += path.stat().st_size
            except OSError:
                pass
        return {
            "name": self.name,
            "location": str(self.path),
            "entries": len(self),
            "size_bytes": size_bytes,
        }

    def kind_counts(self) -> Dict[str, int]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT kind, COUNT(*) FROM entries GROUP BY kind"
            ).fetchall()
        return {str(kind): int(count) for kind, count in rows}

    def spec(self) -> Optional[str]:
        options: Dict[str, Any] = {"path": str(self.path)}
        if self.timeout != 30.0:
            options["timeout"] = self.timeout
        if not self.wal:
            options["wal"] = False
        if self.synchronous != "normal":
            options["synchronous"] = self.synchronous
        return _format_spec(self.name, **options)

    def close(self) -> None:
        with self._lock:
            self._connection.close()
