"""``repro.store`` — pluggable storage backends for the content-addressed caches.

The persistence layer under the whole stack: every cache
(:class:`~repro.service.cache.ScheduleCache`,
:class:`~repro.runtime.service.SimulationCache`) stores its versioned payload
envelopes through a :class:`CacheBackend` picked by a ``name:key=value`` spec
string — ``directory:root=DIR`` for the classic file-per-key layout,
``sqlite:path=FILE.db`` for a single WAL-mode SQLite file that survives
millions of entries and concurrent shard workers.

``python -m repro.store`` inspects and maintains any backend
(``stats`` / ``ls`` / ``prune``) and migrates entries between backends
(``migrate``) with a verified count.
"""

from repro.store.backends import (
    SCHEDULE_CACHE_SUBDIR,
    SIM_CACHE_SUBDIR,
    CacheBackend,
    DirectoryBackend,
    SqliteBackend,
)
from repro.store.migrate import MigrationResult, migrate_backend
from repro.store.registry import (
    backend_names,
    create_backend,
    format_backend_listing,
    parse_backend_spec,
    register_backend,
    schedule_backend,
    simulation_backend,
)

__all__ = [
    "CacheBackend",
    "DirectoryBackend",
    "SqliteBackend",
    "SCHEDULE_CACHE_SUBDIR",
    "SIM_CACHE_SUBDIR",
    "MigrationResult",
    "migrate_backend",
    "backend_names",
    "create_backend",
    "format_backend_listing",
    "parse_backend_spec",
    "register_backend",
    "schedule_backend",
    "simulation_backend",
]
