"""Cache-store maintenance CLI: ``python -m repro.store``.

Inspects and maintains any cache backend through its spec string::

    # What lives in this cache, and how big is it?
    python -m repro.store stats sqlite:path=cache.db

    # Every stored content key (first 20)
    python -m repro.store ls directory:root=my-cache --limit 20

    # Drop corrupt (unreadable) entries
    python -m repro.store prune my-cache

    # Upgrade a grown file-per-key directory into one SQLite file
    python -m repro.store migrate directory:root=my-cache sqlite:path=cache.db

Bare paths work everywhere a spec does: ``cache.db`` means
``sqlite:path=cache.db``, any other path means ``directory:root=...``.
Note that a bare spec opens the location *as given* — unlike the services'
``--cache-backend``, no ``schedules``/``sim-responses`` namespace is
appended, so point ``directory:root=`` at the actual entry directory.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.store.backends import CacheBackend
from repro.store.migrate import migrate_backend
from repro.store.registry import create_backend, format_backend_listing


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Inspect, prune and migrate cache storage backends.",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list the registered storage backends and exit",
    )
    commands = parser.add_subparsers(dest="command")

    stats = commands.add_parser(
        "stats", help="entry counts, size and per-kind breakdown of a backend"
    )
    stats.add_argument("spec", help="backend spec string (or bare path)")

    ls = commands.add_parser("ls", help="list the stored content keys")
    ls.add_argument("spec", help="backend spec string (or bare path)")
    ls.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="print at most N keys (default: all)",
    )

    prune = commands.add_parser(
        "prune", help="delete corrupt entries (default) or the listed keys"
    )
    prune.add_argument("spec", help="backend spec string (or bare path)")
    prune.add_argument(
        "--keys",
        nargs="+",
        default=None,
        metavar="KEY",
        help="delete exactly these keys instead of scanning for corrupt entries",
    )

    migrate = commands.add_parser(
        "migrate",
        help="copy every entry of SRC into DST (idempotent, verified count)",
    )
    migrate.add_argument("source", help="source backend spec string (or bare path)")
    migrate.add_argument(
        "destination", help="destination backend spec string (or bare path)"
    )
    return parser


def _open(parser: argparse.ArgumentParser, spec: str) -> CacheBackend:
    try:
        return create_backend(spec)
    except ValueError as error:
        parser.error(str(error))
        raise AssertionError("unreachable")  # pragma: no cover


def cmd_stats(backend: CacheBackend) -> int:
    stats = backend.stats()
    stats["kinds"] = backend.kind_counts()
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def cmd_ls(backend: CacheBackend, limit: Optional[int]) -> int:
    keys = backend.keys()
    shown = keys if limit is None else keys[:limit]
    for key in shown:
        print(key)
    if limit is not None and len(keys) > limit:
        print(f"... and {len(keys) - limit} more", file=sys.stderr)
    return 0


def cmd_prune(backend: CacheBackend, keys: Optional[Sequence[str]]) -> int:
    removed = backend.prune(keys)
    what = "listed" if keys is not None else "corrupt"
    print(f"pruned {removed} {what} entr{'y' if removed == 1 else 'ies'}", file=sys.stderr)
    return 0


def cmd_migrate(source: CacheBackend, destination: CacheBackend) -> int:
    result = migrate_backend(source, destination)
    print(
        f"migrated {result.copied} entr{'y' if result.copied == 1 else 'ies'} "
        f"({result.skipped} already present, {result.corrupt} corrupt skipped); "
        f"{result.verified}/{result.copied + result.skipped} verified readable "
        "at the destination",
        file=sys.stderr,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_backends:
        print(format_backend_listing())
        return 0
    if args.command is None:
        parser.error("provide a command (stats/ls/prune/migrate) or --list-backends")
    if args.command == "migrate":
        with _open(parser, args.source) as source:
            with _open(parser, args.destination) as destination:
                try:
                    return cmd_migrate(source, destination)
                except RuntimeError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 1
    with _open(parser, args.spec) as backend:
        if args.command == "stats":
            return cmd_stats(backend)
        if args.command == "ls":
            return cmd_ls(backend, args.limit)
        if args.command == "prune":
            return cmd_prune(backend, args.keys)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
