"""Copy cache entries between backends, with a verified count.

The upgrade path for a cache that has outgrown its backend: migrate a
file-per-key directory into one SQLite file (or back) without losing a single
entry.  Copies are raw payload envelopes — no parsing, no version checks — so
a migration never reinterprets (or downgrades) what it moves, and entries of
every kind travel together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.store.backends import CacheBackend


@dataclass(frozen=True)
class MigrationResult:
    """What a migration did, plus the verification that it stuck."""

    copied: int  #: entries written to the destination by this run
    skipped: int  #: source entries already present at the destination
    corrupt: int  #: unreadable source entries, left behind
    verified: int  #: migrated keys confirmed readable from the destination

    @property
    def total(self) -> int:
        return self.copied + self.skipped + self.corrupt


def migrate_backend(
    source: CacheBackend,
    destination: CacheBackend,
    *,
    progress: Optional[Callable[[int, int], None]] = None,
) -> MigrationResult:
    """Copy every readable entry of ``source`` into ``destination``.

    Existing destination entries are never overwritten (``put`` is
    first-write-wins everywhere); they count as ``skipped``.  After copying,
    every migrated key is read back from the destination — a missing readback
    raises ``RuntimeError``, so a reported success really means the data is
    there.  ``progress(done, total)`` is called after each key when given.
    """
    keys = source.keys()
    total = len(keys)
    copied = 0
    skipped = 0
    corrupt = 0
    migrated = []
    for done, key in enumerate(keys, start=1):
        payload = source.get(key)
        if payload is None:
            corrupt += 1
        elif destination.get(key) is not None:
            skipped += 1
            migrated.append(key)
        else:
            destination.put(key, payload)
            copied += 1
            migrated.append(key)
        if progress is not None:
            progress(done, total)
    verified = 0
    for key in migrated:
        if destination.get(key) is None:
            raise RuntimeError(
                f"migration verification failed: key {key!r} unreadable at "
                "the destination"
            )
        verified += 1
    return MigrationResult(
        copied=copied, skipped=skipped, corrupt=corrupt, verified=verified
    )
