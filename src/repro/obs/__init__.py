"""repro.obs — metrics registry, request tracing, Prometheus exposition.

The stack's one observability surface: every layer records into a
:class:`MetricsRegistry` (counters, gauges, fixed-bucket latency histograms),
request execution is traced into per-phase breakdowns via :func:`span`, and
any registry snapshot renders to Prometheus text exposition with
:func:`render`.  Observability data flows strictly outward — it never enters
content keys, response envelopes, journals or cached payloads, so answers
stay byte-identical with metrics on or off.
"""

from repro.obs.expo import render, write_metrics_file
from repro.obs.metrics import (
    CACHE_OPS_TOTAL,
    DEFAULT_LATENCY_BUCKETS_MS,
    MEMO_OPS_TOTAL,
    REQUEST_LATENCY_MS,
    REQUESTS_TOTAL,
    SERVER_COMPUTED_TOTAL,
    SERVER_CONNECTIONS_OPEN,
    SERVER_CONNECTIONS_TOTAL,
    SERVER_DEDUP_TOTAL,
    SERVER_QUEUE_DEPTH,
    SERVER_REQUESTS_TOTAL,
    SERVER_UPTIME_SECONDS,
    MetricsRegistry,
    merge_snapshots,
    observe_phases,
)
from repro.obs.trace import (
    PHASE_CACHE_LOOKUP,
    PHASE_QUEUE_WAIT,
    PHASE_SCHEDULE,
    PHASE_SIMULATE,
    PHASE_STORE,
    Trace,
    activate,
    current_trace,
    new_trace_id,
    span,
)

__all__ = [
    "CACHE_OPS_TOTAL",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "MEMO_OPS_TOTAL",
    "MetricsRegistry",
    "PHASE_CACHE_LOOKUP",
    "PHASE_QUEUE_WAIT",
    "PHASE_SCHEDULE",
    "PHASE_SIMULATE",
    "PHASE_STORE",
    "REQUEST_LATENCY_MS",
    "REQUESTS_TOTAL",
    "SERVER_COMPUTED_TOTAL",
    "SERVER_CONNECTIONS_OPEN",
    "SERVER_CONNECTIONS_TOTAL",
    "SERVER_DEDUP_TOTAL",
    "SERVER_QUEUE_DEPTH",
    "SERVER_REQUESTS_TOTAL",
    "SERVER_UPTIME_SECONDS",
    "Trace",
    "activate",
    "current_trace",
    "merge_snapshots",
    "new_trace_id",
    "observe_phases",
    "render",
    "span",
    "write_metrics_file",
]
