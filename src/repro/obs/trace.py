"""Lightweight request tracing: per-request phase breakdowns across processes.

A :class:`Trace` accumulates named *phases* — (name, duration) pairs measured
with ``time.monotonic`` — for one request: queue-wait, cache-lookup, schedule,
simulate, store.  The active trace travels through the call stack via a
:mod:`contextvars` context variable, so the pure execution paths
(:func:`~repro.service.service.execute_request`,
:func:`~repro.runtime.service.execute_simulation`) can time their work with
:func:`span` without growing trace parameters — and without paying anything
when nobody is tracing: ``span`` is a no-op unless a trace is active.

Across the process pool, the ``trace_id`` and the submission timestamp ship
with the job; the worker opens a fresh trace under the same id, records the
queue-wait it observed (``time.monotonic`` is comparable across processes on
one machine) and returns the phase breakdown alongside the response.  Phase
data lives only in registries and sidecars — never in response envelopes,
content keys, journals or cached payloads.
"""

from __future__ import annotations

import contextlib
import time
import uuid
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

#: Phase names used across the stack (the metric label values).
PHASE_QUEUE_WAIT = "queue-wait"
PHASE_CACHE_LOOKUP = "cache-lookup"
PHASE_SCHEDULE = "schedule"
PHASE_SIMULATE = "simulate"
PHASE_STORE = "store"

_ACTIVE: ContextVar[Optional["Trace"]] = ContextVar("repro_obs_trace", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-character trace identifier."""
    return uuid.uuid4().hex[:16]


class Trace:
    """Phase accumulator for one request."""

    __slots__ = ("trace_id", "phases")

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.phases: List[Dict[str, Any]] = []

    def add_phase(self, name: str, duration_s: float) -> None:
        """Append a phase (duration recorded in milliseconds, never negative)."""
        self.phases.append(
            {"phase": name, "duration_ms": max(0.0, duration_s) * 1000.0}
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "phases": list(self.phases)}


def current_trace() -> Optional[Trace]:
    """The trace active in this context, or ``None`` when nobody is tracing."""
    return _ACTIVE.get()


@contextlib.contextmanager
def activate(trace: Trace) -> Iterator[Trace]:
    """Make ``trace`` the active trace for the duration of the block."""
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)


@contextlib.contextmanager
def span(name: str) -> Iterator[Optional[Trace]]:
    """Time the block as phase ``name`` of the active trace (no-op without one).

    The trace is captured at entry, so a nested :func:`activate` inside the
    block cannot steal the phase.
    """
    trace = _ACTIVE.get()
    if trace is None:
        yield None
        return
    started = time.monotonic()
    try:
        yield trace
    finally:
        trace.add_phase(name, time.monotonic() - started)
