"""Process-local metrics: named counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` holds metric *families* — one per metric name —
each of which carries labelled samples (a counter value, a gauge value, or a
histogram's bucket counts).  The registry is thread-safe (one lock guards all
families; the serving daemon touches it from the event loop and from executor
callback threads) and deliberately tiny: no background threads, no global
state, no wire protocol of its own.

Two operations make it fit the stack's process-pool execution model:

* :meth:`MetricsRegistry.snapshot` — a plain-dict, JSON-able view of every
  family, with deterministically sorted samples.  Snapshots are what pool
  workers ship back to the dispatching process, what the daemon's ``metrics``
  RPC renders (:mod:`repro.obs.expo`), and what ``--metrics-out`` writes.
* :meth:`MetricsRegistry.merge` — fold a snapshot into this registry:
  counters and histogram buckets add, gauges take the incoming value.  Merging
  the per-worker registries of an N-worker batch yields the same totals as
  running the batch serially, which the tests assert.

Observability is strictly one-way: nothing in this module ever feeds back
into request content keys, response envelopes, journals or cached payloads.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Histogram bucket upper bounds for request-phase latencies, in milliseconds.
#: Warm cache hits answer in well under a millisecond, GA searches take tens
#: of seconds — the buckets span both regimes.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

# -- the stack's metric names (one catalogue, used by every layer) ---------------

#: Requests answered by a service or the daemon, by kind and cache status.
REQUESTS_TOTAL = "repro_requests_total"
#: Cache lookups/stores by cache name and operation (hit/miss/store).
CACHE_OPS_TOTAL = "repro_cache_ops_total"
#: Process-local memo-cache operations by memo name and op (hit/miss/evict).
MEMO_OPS_TOTAL = "repro_memo_ops_total"
#: Per-phase request latency (queue-wait, cache-lookup, schedule, simulate, store).
REQUEST_LATENCY_MS = "repro_request_latency_ms"
#: Daemon admission outcomes (admitted/rejected/failed).
SERVER_REQUESTS_TOTAL = "repro_server_requests_total"
#: Computations the daemon's dispatcher completed, by kind.
SERVER_COMPUTED_TOTAL = "repro_server_computed_total"
#: Requests answered by awaiting an identical in-flight computation, by kind.
SERVER_DEDUP_TOTAL = "repro_server_dedup_total"
#: Live queue depth of the daemon's dispatcher.
SERVER_QUEUE_DEPTH = "repro_server_queue_depth"
#: Open client connections on the daemon.
SERVER_CONNECTIONS_OPEN = "repro_server_connections_open"
#: Client connections accepted over the daemon's lifetime.
SERVER_CONNECTIONS_TOTAL = "repro_server_connections_total"
#: Seconds since the daemon bound its socket (set at scrape time).
SERVER_UPTIME_SECONDS = "repro_server_uptime_seconds"


class _Family:
    """One metric family: a kind, a help string, label names, and samples."""

    __slots__ = ("name", "kind", "help", "label_names", "bounds", "samples")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        bounds: Optional[Tuple[float, ...]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.bounds = bounds
        # Label-value tuple (in label_names order) -> sample state.  Counter
        # and gauge state is a float; histogram state is
        # [per-bucket counts..., overflow] + [sum, count].
        self.samples: Dict[Tuple[str, ...], Any] = {}


def _label_values(
    family: _Family, labels: Mapping[str, Any]
) -> Tuple[str, ...]:
    if set(labels) != set(family.label_names):
        raise ValueError(
            f"metric {family.name!r} takes labels {sorted(family.label_names)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in family.label_names)


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms.

    Families are created on first access and type-checked on every later
    access — registering ``repro_requests_total`` as a counter and later
    asking for it as a histogram is a bug, reported as :class:`ValueError`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- family registration -----------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, tuple(labels), bounds)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if tuple(labels) and family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} has labels {family.label_names}, not {tuple(labels)}"
            )
        if bounds is not None and family.bounds != bounds:
            raise ValueError(f"metric {name!r} has different histogram buckets")
        return family

    # -- instruments -------------------------------------------------------------

    def counter_inc(
        self, name: str, amount: float = 1, *, help: str = "", **labels: Any
    ) -> None:
        """Add ``amount`` (>= 0) to the counter sample selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        with self._lock:
            family = self._family(name, KIND_COUNTER, help, tuple(sorted(labels)))
            key = _label_values(family, labels)
            family.samples[key] = family.samples.get(key, 0) + amount

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter sample (0 when never incremented)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0
            return family.samples.get(_label_values(family, labels), 0)

    def gauge_set(
        self, name: str, value: float, *, help: str = "", **labels: Any
    ) -> None:
        """Set the gauge sample selected by ``labels`` to ``value``."""
        with self._lock:
            family = self._family(name, KIND_GAUGE, help, tuple(sorted(labels)))
            family.samples[_label_values(family, labels)] = value

    def gauge_value(self, name: str, **labels: Any) -> float:
        """Current value of a gauge sample (0 when never set)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0
            return family.samples.get(_label_values(family, labels), 0)

    def histogram_observe(
        self,
        name: str,
        value: float,
        *,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
        **labels: Any,
    ) -> None:
        """Record one observation into the histogram selected by ``labels``."""
        with self._lock:
            family = self._family(
                name, KIND_HISTOGRAM, help, tuple(sorted(labels)), tuple(buckets)
            )
            key = _label_values(family, labels)
            state = family.samples.get(key)
            if state is None:
                state = family.samples[key] = {
                    # Non-cumulative per-bucket counts; the last slot counts
                    # observations above every bound (the +Inf bucket).
                    "buckets": [0] * (len(family.bounds) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            for index, bound in enumerate(family.bounds):
                if value <= bound:
                    state["buckets"][index] += 1
                    break
            else:
                state["buckets"][-1] += 1
            state["sum"] += value
            state["count"] += 1

    def histogram_count(self, name: str, **labels: Any) -> int:
        """Total observations of a histogram sample (0 when never observed)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0
            state = family.samples.get(_label_values(family, labels))
            return state["count"] if state is not None else 0

    # -- snapshot / merge --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view of every family, samples deterministically sorted."""
        with self._lock:
            families: Dict[str, Any] = {}
            for name in sorted(self._families):
                family = self._families[name]
                samples: List[Dict[str, Any]] = []
                for key in sorted(family.samples):
                    labels = dict(zip(family.label_names, key))
                    state = family.samples[key]
                    if family.kind == KIND_HISTOGRAM:
                        samples.append(
                            {
                                "labels": labels,
                                "buckets": list(state["buckets"]),
                                "sum": state["sum"],
                                "count": state["count"],
                            }
                        )
                    else:
                        samples.append({"labels": labels, "value": state})
                entry: Dict[str, Any] = {
                    "kind": family.kind,
                    "help": family.help,
                    "labels": list(family.label_names),
                    "samples": samples,
                }
                if family.bounds is not None:
                    entry["bounds"] = list(family.bounds)
                families[name] = entry
            return {"families": families}

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram bucket counts add; gauges take the incoming
        value (last write wins).  Merging the same snapshot twice therefore
        double-counts counters — ship each worker snapshot exactly once.
        """
        for name, entry in snapshot.get("families", {}).items():
            kind = entry["kind"]
            bounds = tuple(entry["bounds"]) if "bounds" in entry else None
            with self._lock:
                family = self._family(
                    name, kind, entry.get("help", ""), tuple(entry["labels"]), bounds
                )
                for sample in entry["samples"]:
                    key = tuple(
                        str(sample["labels"][label]) for label in family.label_names
                    )
                    if kind == KIND_HISTOGRAM:
                        state = family.samples.get(key)
                        if state is None:
                            state = family.samples[key] = {
                                "buckets": [0] * (len(family.bounds) + 1),
                                "sum": 0.0,
                                "count": 0,
                            }
                        incoming = sample["buckets"]
                        if len(incoming) != len(state["buckets"]):
                            raise ValueError(
                                f"histogram {name!r} bucket count mismatch on merge"
                            )
                        for index, count in enumerate(incoming):
                            state["buckets"][index] += count
                        state["sum"] += sample["sum"]
                        state["count"] += sample["count"]
                    elif kind == KIND_COUNTER:
                        family.samples[key] = family.samples.get(key, 0) + sample["value"]
                    else:
                        family.samples[key] = sample["value"]


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge many snapshots into one (a fresh registry folds them in order)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()


def observe_phases(
    registry: MetricsRegistry, kind: str, phases: Iterable[Mapping[str, Any]]
) -> None:
    """Record a trace's phase breakdown into the request-latency histogram."""
    for phase in phases:
        registry.histogram_observe(
            REQUEST_LATENCY_MS,
            float(phase["duration_ms"]),
            help="Per-phase request latency in milliseconds.",
            kind=kind,
            phase=str(phase["phase"]),
        )
