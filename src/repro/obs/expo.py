"""Prometheus text-format exposition of a registry snapshot.

:func:`render` turns any :meth:`MetricsRegistry.snapshot
<repro.obs.metrics.MetricsRegistry.snapshot>` into the text exposition format
standard scrapers understand: ``# HELP``/``# TYPE`` headers, one sample line
per labelled value, and — for histograms — cumulative ``_bucket`` lines ending
in ``le="+Inf"`` plus the ``_sum`` and ``_count`` series.  Families and
samples come out in the snapshot's deterministic order, so the same registry
state always renders to the same bytes.
"""

from __future__ import annotations

from typing import Any, List, Mapping

from repro.obs.metrics import KIND_HISTOGRAM


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, Any], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_number(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return _format_number(float(bound))


def render(snapshot: Mapping[str, Any]) -> str:
    """The snapshot as Prometheus text exposition (trailing newline included)."""
    lines: List[str] = []
    for name, family in snapshot.get("families", {}).items():
        kind = family["kind"]
        help_text = family.get("help", "").replace("\\", "\\\\").replace("\n", "\\n")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind == KIND_HISTOGRAM:
                cumulative = 0
                for bound, count in zip(family["bounds"], sample["buckets"]):
                    cumulative += count
                    label_str = _format_labels(
                        labels, f'le="{_format_bound(bound)}"'
                    )
                    lines.append(f"{name}_bucket{label_str} {cumulative}")
                cumulative += sample["buckets"][-1]
                label_str = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{label_str} {cumulative}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_number(sample['sum'])}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_number(sample['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics_file(path, snapshot: Mapping[str, Any]) -> None:
    """Write the snapshot's exposition text to ``path`` (UTF-8)."""
    from pathlib import Path

    Path(path).write_text(render(snapshot), encoding="utf-8")
