"""JSONL batch CLI for the simulation service: ``python -m repro.runtime``.

Reads simulation requests (one versioned ``repro/sim-request`` payload per
line), executes them as one batch through
:class:`repro.runtime.SimulationService`, and writes the responses — one
versioned ``repro/sim-response`` payload per line, in request order — to
stdout or ``--output``.

Alternatively ``--scenario`` builds the batch declaratively: requests are
generated from a named (or inline-JSON) scenario for ``--systems`` system
indices, each ``--methods`` schedule spec and each ``--execution-models``
model, with no request file at all.

Examples::

    # What run-time architectures can be simulated?
    python -m repro.runtime --list-execution-models

    # Dedicated controller vs CPU-instigated I/O on a preset scenario
    python -m repro.runtime --scenario faulty-controller \
        --execution-models dedicated-controller cpu-instigated \
        --cache-dir runtime-cache/ -o responses.jsonl

    # Pipe mode: requests on stdin, responses on stdout
    python -m repro.runtime - < requests.jsonl > responses.jsonl

Re-running the same requests against a populated ``--cache-dir`` simulates
nothing: every response comes back flagged ``cache: hit`` (the schedule cache
under ``<cache-dir>/schedules`` is shared with ``python -m repro.service``
consumers pointing at the same directory).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.core import logging as relog
from repro.runtime.messages import SimulationRequest
from repro.runtime.models import (
    ExecutionModelSpec,
    format_execution_model_listing,
)
from repro.runtime.service import (
    SCHEDULE_CACHE_SUBDIR,
    SIM_CACHE_SUBDIR,
    SimulationService,
)
from repro.scenario import create_scenario, format_scenario_listing
from repro.scheduling import format_scheduler_listing
from repro.service.spec import SchedulerSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Batch-simulate run-time execution of offline schedules; "
        "JSONL sim-requests in, JSONL sim-responses out.",
    )
    parser.add_argument(
        "input",
        nargs="?",
        default=None,
        help="request JSONL file ('-' reads stdin); one versioned "
        "repro/sim-request payload per line.  Omit when using --scenario",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_JSON",
        help="generate the request batch from a scenario (a registered preset "
        "name, see --list-scenarios, or inline repro/scenario JSON) instead "
        "of reading a request file",
    )
    parser.add_argument(
        "--systems",
        type=int,
        default=1,
        metavar="N",
        help="with --scenario: simulate system indices 0..N-1 (default: 1)",
    )
    parser.add_argument(
        "--methods",
        nargs="+",
        default=["static"],
        metavar="SPEC",
        help="with --scenario: schedule-method spec strings whose schedules "
        "to execute (default: static)",
    )
    parser.add_argument(
        "--execution-models",
        nargs="+",
        default=["dedicated-controller"],
        metavar="MODEL",
        help="with --scenario: execution models to run each schedule on "
        "(default: dedicated-controller; see --list-execution-models)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="T",
        help="with --scenario: simulation horizon in microseconds "
        "(default: each system's hyper-period)",
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="with --scenario: bound the discrete-event simulation; an "
        "exhausted budget is reported on the response",
    )
    parser.add_argument(
        "--list-execution-models",
        action="store_true",
        help="list the registered execution models and exit",
    )
    parser.add_argument(
        "--list-methods",
        action="store_true",
        help="list the registered scheduling methods and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the registered scenario presets and exit",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="response JSONL file (default: stdout)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the batch (default: 1); responses are "
        "bit-identical at any worker count",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the persistent caches: simulation responses under "
        f"{SIM_CACHE_SUBDIR}/, offline schedules under {SCHEDULE_CACHE_SUBDIR}/ "
        "(omit to cache in memory for this batch only)",
    )
    parser.add_argument(
        "--cache-backend",
        default=None,
        metavar="SPEC",
        help="storage backend for both persistent caches, as a "
        "'name:key=value' spec string — e.g. 'sqlite:path=cache.db' (one "
        "file holds both caches) or 'directory:root=DIR' (equivalent to "
        "--cache-dir DIR).  Conflicts with --cache-dir; see "
        "`python -m repro.store --list-backends`",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print the simulation and schedule caches' lifetime "
        "counters (entries/hits/misses/stores) and the per-worker "
        "memo-cache hit/miss counters to stderr after the batch",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the batch's metrics (Prometheus text exposition: request "
        "counters, cache ops, per-phase latency histograms) to FILE",
    )
    relog.add_log_level_argument(parser)
    return parser


def scenario_requests(
    scenario_ref: str,
    methods: Sequence[str],
    execution_models: Sequence[str],
    n_systems: int,
    *,
    horizon: Optional[int] = None,
    max_events: Optional[int] = None,
) -> List[SimulationRequest]:
    """Build the declarative request batch of ``--scenario`` mode."""
    scenario = create_scenario(scenario_ref)
    requests = []
    for system_index in range(n_systems):
        for method in methods:
            spec = SchedulerSpec.parse(method)
            for model in execution_models:
                model_spec = ExecutionModelSpec.parse(model)
                requests.append(
                    SimulationRequest(
                        scenario=scenario,
                        system_index=system_index,
                        method=spec,
                        execution_model=model_spec,
                        horizon=horizon,
                        max_events=max_events,
                        request_id=f"{scenario.name}/{system_index}/{spec}/{model_spec}",
                    )
                )
    return requests


def read_requests(handle: TextIO, *, source: str) -> List[SimulationRequest]:
    requests: List[SimulationRequest] = []
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            requests.append(SimulationRequest.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as error:
            raise SystemExit(f"{source}:{line_number}: invalid request: {error}")
    return requests


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    relog.configure_from_args(args)
    if args.list_execution_models or args.list_methods or args.list_scenarios:
        if args.list_execution_models:
            print(format_execution_model_listing())
        if args.list_methods:
            print(format_scheduler_listing())
        if args.list_scenarios:
            print(format_scenario_listing())
        return 0
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if (args.input is None) == (args.scenario is None):
        parser.error("provide exactly one of an input file and --scenario")
    if args.systems < 1:
        parser.error(f"--systems must be >= 1, got {args.systems}")

    if args.scenario is not None:
        try:
            requests = scenario_requests(
                args.scenario,
                args.methods,
                args.execution_models,
                args.systems,
                horizon=args.horizon,
                max_events=args.max_events,
            )
        except (ValueError, KeyError) as error:
            parser.error(f"--scenario: {error}")
    elif args.input == "-":
        requests = read_requests(sys.stdin, source="<stdin>")
    else:
        with open(args.input, "r", encoding="utf-8") as handle:
            requests = read_requests(handle, source=args.input)

    if args.cache_dir is not None and args.cache_backend is not None:
        parser.error("pass either --cache-dir or --cache-backend, not both")
    cache_dir = schedule_cache_dir = None
    if args.cache_dir is not None:
        root = Path(args.cache_dir)
        cache_dir = str(root / SIM_CACHE_SUBDIR)
        schedule_cache_dir = str(root / SCHEDULE_CACHE_SUBDIR)

    try:
        service = SimulationService(
            n_workers=args.workers,
            cache_dir=cache_dir,
            cache_backend=args.cache_backend,
            schedule_cache_dir=schedule_cache_dir,
        )
    except ValueError as error:
        parser.error(f"--cache-backend: {error}")
    with service:
        responses = service.submit_batch(requests)
        stats = service.stats()
        scheduling_stats = service.scheduling.stats()
        metrics_snapshot = service.metrics()

    lines = "".join(response.to_json() + "\n" for response in responses)
    if args.output is None:
        sys.stdout.write(lines)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(lines)

    hits = sum(1 for response in responses if response.cache == "hit")
    print(
        f"{len(responses)} response(s): {stats['computed']} simulated, "
        f"{hits} served from cache",
        file=sys.stderr,
    )
    if args.verbose:
        from repro.service.__main__ import format_cache_stats, format_memo_stats

        print(format_cache_stats("sim cache", stats), file=sys.stderr)
        print(format_cache_stats("schedule cache", scheduling_stats), file=sys.stderr)
        print(format_memo_stats(metrics_snapshot), file=sys.stderr)
    if args.metrics_out is not None:
        from repro.obs import write_metrics_file

        write_metrics_file(args.metrics_out, metrics_snapshot)
        relog.info("metrics-written", path=args.metrics_out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
