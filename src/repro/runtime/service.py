"""The simulation service: batch run-time execution over a reusable pool.

:func:`execute_simulation` is the single, *pure* execution path: obtain the
offline schedule (through a :class:`~repro.service.SchedulingService` when one
is supplied — reusing its content-addressed schedule cache — or the pure
:func:`~repro.service.service.execute_request` otherwise), build a fresh
platform from the scenario, resolve the execution model through the registry,
run it, and fold the outcome into a
:class:`~repro.runtime.messages.SimulationResponse`.  Purity is load-bearing:
the execution seed defaults to a hash of the request's content and the
scheduling path derives its own seeds the same way, so the same request
yields bit-identical results in-process, on any worker of the pool, and
across runs — which is what makes the content-addressed simulation cache
sound.

:class:`SimulationService` mirrors :class:`~repro.service.SchedulingService`
exactly: a lazily created worker pool (``n_workers=1`` runs serially
in-process), in-batch dedup of content-identical requests, a content-addressed
response cache (in-memory, optionally directory-backed), and hit/miss
provenance on every response.

The controller-simulation experiment, the campaign runner and the
``python -m repro.runtime`` JSONL CLI all simulate through this facade.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.memo import drain_memo_metrics
from repro.core.serialization import content_hash
from repro.hardware.faults import FaultInjector
from repro.obs.metrics import (
    REQUESTS_TOTAL,
    MetricsRegistry,
    merge_snapshots,
    observe_phases,
)
from repro.obs.trace import (
    PHASE_CACHE_LOOKUP,
    PHASE_QUEUE_WAIT,
    PHASE_SCHEDULE,
    PHASE_SIMULATE,
    PHASE_STORE,
    Trace,
    activate,
    new_trace_id,
    span,
)
from repro.runtime.messages import SimulationRequest, SimulationResponse
from repro.runtime.models import ExecutionOutcome
from repro.scenario import build_platform, materialize
from repro.service.cache import ScheduleCache
from repro.service.messages import CACHE_DISABLED, CACHE_HIT, CACHE_MISS, ScheduleResponse
from repro.service.service import SchedulingService, execute_request
from repro.store.backends import SCHEDULE_CACHE_SUBDIR as _SCHEDULE_CACHE_SUBDIR
from repro.store.backends import SIM_CACHE_SUBDIR as _SIM_CACHE_SUBDIR

if TYPE_CHECKING:  # pragma: no cover
    from repro.store import CacheBackend

SIM_CACHE_ENTRY_KIND = "repro/sim-cache-entry"
SIM_CACHE_ENTRY_VERSION = 1

# The shared two-namespace cache layout now lives with the storage backends
# (:mod:`repro.store`); re-exported here because the batch CLIs and daemon
# historically imported it from this module.
SIM_CACHE_SUBDIR = _SIM_CACHE_SUBDIR
SCHEDULE_CACHE_SUBDIR = _SCHEDULE_CACHE_SUBDIR


class SimulationCache(ScheduleCache):
    """Content-addressed store of simulation results.

    The same machinery as the schedule cache, under its own payload kind, so
    a simulation entry can never be misread as a schedule entry (or vice
    versa) even when the two caches share a directory — or one SQLite file.
    """

    METRICS_LABEL = "simulation"

    def __init__(self, directory=None, *, backend=None, metrics=None):
        super().__init__(
            directory,
            backend=backend,
            kind=SIM_CACHE_ENTRY_KIND,
            version=SIM_CACHE_ENTRY_VERSION,
            metrics=metrics,
        )


def derive_execution_seed(request: SimulationRequest) -> int:
    """Deterministic execution-RNG seed for a request that does not pin one.

    Salted so the stream decorrelates from the scenario-materialisation and
    schedule-seed streams derived from the same content hashes.
    """
    return int(
        content_hash(
            {"purpose": "runtime-execution-seed", "request": request.content_key()}
        ),
        16,
    )


def _unschedulable_response(
    request: SimulationRequest, schedule_response: ScheduleResponse, elapsed_s: float
) -> SimulationResponse:
    return SimulationResponse(
        request_id=request.request_id,
        scenario=request.scenario.name,
        method=schedule_response.spec,
        execution_model=str(request.execution_model),
        system_index=request.system_index,
        horizon=schedule_response.horizon,
        schedulable=False,
        accuracy=0.0,
        psi=0.0,
        upsilon=0.0,
        offline_psi=schedule_response.psi,
        offline_upsilon=schedule_response.upsilon,
        matches_offline=False,
        executed_jobs=0,
        skipped_jobs=0,
        faults_detected=0,
        mean_noc_latency=0.0,
        max_noc_latency=0,
        events_processed=0,
        exhausted=False,
        trace={},
        elapsed_s=elapsed_s,
    )


def _trace_summary(outcome: ExecutionOutcome) -> Dict[str, object]:
    deviations = outcome.start_time_deviations()
    return {
        "event_counts": dict(outcome.trace_counts),
        "max_deviation": max(deviations) if deviations else 0,
        "mean_deviation": (sum(deviations) / len(deviations)) if deviations else 0.0,
    }


def execute_simulation(
    request: SimulationRequest,
    *,
    scheduling: Optional[SchedulingService] = None,
    schedule_response: Optional[ScheduleResponse] = None,
) -> SimulationResponse:
    """Execute one simulation request end to end; pure in the request's content.

    ``scheduling`` is an optional scheduling service to obtain the offline
    schedule through (sharing its content-addressed schedule cache with every
    other consumer); without one the schedule is computed directly via the
    pure :func:`~repro.service.service.execute_request` — the *result* is
    identical either way, only the caching differs.  ``schedule_response``
    short-circuits scheduling entirely: it must be the (deterministic) answer
    to ``request.schedule_request()`` — this is how the service ships
    already-cached schedules to pool workers.

    The returned response carries no cache provenance (``cache="disabled"``);
    :class:`SimulationService` stamps hit/miss status and the content key on
    top.
    """
    start = time.perf_counter()
    if schedule_response is None:
        schedule_request = request.schedule_request()
        if scheduling is not None:
            # The scheduling service traces its own batch internally; the
            # span records the whole schedule-obtaining phase on *this*
            # request's trace.  The bare execute_request path records its own
            # schedule span, so either way the trace carries exactly one.
            with span(PHASE_SCHEDULE):
                schedule_response = scheduling.submit(schedule_request)
        else:
            schedule_response = execute_request(schedule_request)

    if not schedule_response.schedulable:
        return _unschedulable_response(
            request, schedule_response, time.perf_counter() - start
        )

    with span(PHASE_SIMULATE):
        # A fresh platform per execution: simulation objects are stateful.
        # With an explicit workload only the platform and faults come from
        # the scenario; otherwise the whole triple is materialised
        # deterministically.
        if request.task_set is not None:
            task_set = request.task_set
            platform = build_platform(
                request.scenario.platform,
                fault_injector=FaultInjector(list(request.scenario.faults.faults)),
            )
        else:
            materialized = materialize(request.scenario, request.system_index)
            task_set = materialized.task_set
            platform = materialized.platform

        schedules = schedule_response.device_schedules(task_set)
        seed = (
            request.seed if request.seed is not None else derive_execution_seed(request)
        )
        model = request.execution_model.resolve()
        outcome = model.execute(
            task_set, schedules, platform, seed=seed, max_events=request.max_events
        )

    return SimulationResponse(
        request_id=request.request_id,
        scenario=request.scenario.name,
        method=schedule_response.spec,
        execution_model=str(request.execution_model),
        system_index=request.system_index,
        horizon=schedule_response.horizon,
        schedulable=True,
        accuracy=outcome.accuracy,
        psi=outcome.psi,
        upsilon=outcome.upsilon,
        offline_psi=schedule_response.psi,
        offline_upsilon=schedule_response.upsilon,
        matches_offline=outcome.matches_offline,
        executed_jobs=outcome.executed_jobs,
        skipped_jobs=outcome.skipped_jobs,
        faults_detected=outcome.faults_detected,
        mean_noc_latency=outcome.mean_noc_latency,
        max_noc_latency=outcome.max_noc_latency,
        events_processed=outcome.events_processed,
        exhausted=outcome.exhausted,
        trace=_trace_summary(outcome),
        elapsed_s=time.perf_counter() - start,
    )


def execute_simulation_job(
    args: Tuple[SimulationRequest, Optional[str], Optional[Dict[str, object]]],
) -> SimulationResponse:
    """Worker-side entry point: one request, plus how to get its schedule.

    A schedule already cached in the dispatching service travels along as its
    deterministic ``result_dict`` (no recomputation at all); otherwise each
    call re-opens the dispatching service's persistent schedule cache from
    its backend spec string (see :meth:`ScheduleCache.backend_spec
    <repro.service.cache.ScheduleCache.backend_spec>`), so pool workers reuse
    schedules computed by anyone — every backend writes atomically and is
    safe for concurrent writers.
    """
    request, schedule_backend_spec, cached_schedule = args
    if cached_schedule is not None:
        return execute_simulation(
            request, schedule_response=ScheduleResponse.from_result_dict(cached_schedule)
        )
    if schedule_backend_spec is None:
        return execute_simulation(request)
    from repro.store import create_backend

    cache = ScheduleCache(backend=create_backend(schedule_backend_spec))
    try:
        with SchedulingService(cache=cache) as scheduling:
            return execute_simulation(request, scheduling=scheduling)
    finally:
        cache.close()


def execute_simulation_job_observed(
    args: Tuple[
        SimulationRequest,
        Optional[str],
        Optional[Dict[str, object]],
        Optional[str],
        Optional[float],
    ],
) -> Tuple[SimulationResponse, Dict[str, object], Dict[str, object]]:
    """Pool-worker entry: :func:`execute_simulation_job` under trace + registry.

    ``args`` extends the :func:`execute_simulation_job` triple with
    ``(trace_id, submitted_monotonic)``; the worker records the queue-wait it
    observed and ships back ``(response, trace_dict, registry_snapshot)``.
    The response is untouched — answers stay byte-identical with or without
    observation.
    """
    request, schedule_backend_spec, cached_schedule, trace_id, submitted = args
    registry = MetricsRegistry()
    trace = Trace(trace_id)
    if submitted is not None:
        trace.add_phase(PHASE_QUEUE_WAIT, time.monotonic() - submitted)
    with activate(trace):
        response = execute_simulation_job(
            (request, schedule_backend_spec, cached_schedule)
        )
    observe_phases(registry, "simulation", trace.phases)
    drain_memo_metrics(registry)
    return response, trace.to_dict(), registry.snapshot()


def slim_simulation_entry(
    request: SimulationRequest,
    cached_schedule: Optional[Dict[str, object]],
    trace_id: str,
    scenarios: Dict[str, Any],
) -> Tuple[Any, ...]:
    """One slim chunk-payload entry for ``request``; fills ``scenarios``.

    Requests without an explicit workload ship only their small fields plus
    the scenario's content key — the envelope itself goes into the chunk's
    shared ``scenarios`` table exactly once, however many jobs of the chunk
    reference it.  Explicit-workload requests ship whole.
    """
    content_key = request.content_key()
    if request.task_set is None and request.scenario is not None:
        scenario_key = request.scenario.content_key()
        scenarios.setdefault(scenario_key, request.scenario)
        return (
            "scenario",
            scenario_key,
            request.method,
            request.execution_model,
            request.system_index,
            request.horizon,
            request.max_events,
            request.seed,
            request.request_id,
            content_key,
            cached_schedule,
            trace_id,
        )
    return ("request", request, content_key, cached_schedule, trace_id)


def inflate_simulation_entry(
    entry: Tuple[Any, ...], scenarios: Dict[str, Any]
) -> Tuple[SimulationRequest, Optional[Dict[str, object]], str]:
    """Rebuild ``(request, cached_schedule, trace_id)`` from a slim entry."""
    if entry[0] == "scenario":
        (
            _,
            scenario_key,
            method,
            execution_model,
            system_index,
            horizon,
            max_events,
            seed,
            request_id,
            content_key,
            cached_schedule,
            trace_id,
        ) = entry
        request = SimulationRequest(
            scenario=scenarios[scenario_key],
            method=method,
            execution_model=execution_model,
            system_index=system_index,
            horizon=horizon,
            max_events=max_events,
            seed=seed,
            request_id=request_id,
        )
    else:
        _, request, content_key, cached_schedule, trace_id = entry
    if content_key is not None:
        object.__setattr__(request, "_content_key", content_key)
    return request, cached_schedule, trace_id


def execute_simulation_chunk(
    payload: Tuple[Dict[str, Any], Optional[str], List[Tuple[Any, ...]], Optional[float]],
) -> Tuple[List[Tuple[SimulationResponse, Dict[str, object]]], Dict[str, object]]:
    """Pool-worker entry: execute one slim chunk of simulation requests.

    ``payload`` is ``(scenarios, schedule_backend_spec, entries, submitted)``.
    The dispatching service's persistent schedule cache is re-opened **once
    per chunk** (not once per job) and shared by every job of the chunk that
    did not come with its schedule attached; each job runs under its own
    trace, and the chunk ships one registry snapshot covering every job plus
    this worker's memo-cache deltas.
    """
    scenarios, schedule_backend_spec, entries, submitted = payload
    registry = MetricsRegistry()
    outcomes: List[Tuple[SimulationResponse, Dict[str, object]]] = []
    schedule_cache: Optional[ScheduleCache] = None
    scheduling: Optional[SchedulingService] = None
    try:
        if schedule_backend_spec is not None:
            from repro.store import create_backend

            schedule_cache = ScheduleCache(backend=create_backend(schedule_backend_spec))
            scheduling = SchedulingService(cache=schedule_cache)
        for entry in entries:
            request, cached_schedule, trace_id = inflate_simulation_entry(
                entry, scenarios
            )
            trace = Trace(trace_id)
            if submitted is not None:
                trace.add_phase(PHASE_QUEUE_WAIT, time.monotonic() - submitted)
            with activate(trace):
                if cached_schedule is not None:
                    response = execute_simulation(
                        request,
                        schedule_response=ScheduleResponse.from_result_dict(
                            cached_schedule
                        ),
                    )
                else:
                    response = execute_simulation(request, scheduling=scheduling)
            observe_phases(registry, "simulation", trace.phases)
            outcomes.append((response, trace.to_dict()))
    finally:
        if scheduling is not None:
            scheduling.close()
        if schedule_cache is not None:
            schedule_cache.close()
    drain_memo_metrics(registry)
    return outcomes, registry.snapshot()


_CACHE_DEFAULT = object()


class SimulationService:
    """Request/response facade over run-time execution, with batching and caching.

    Parameters
    ----------
    n_workers:
        Worker processes for batch execution; ``1`` (the default) runs
        serially in-process.  Responses are bit-identical at any worker
        count.
    cache_dir:
        Directory for the persistent simulation-response cache; ``None``
        keeps the cache in memory only.
    cache_backend:
        Storage-backend spec string (see :mod:`repro.store`) or live
        :class:`~repro.store.CacheBackend` for the simulation-response
        cache; directory specs persist under ``root/sim-responses``.  When
        no ``scheduling`` service is given, the owned one opens the same
        spec too (its directory form lands under ``root/schedules``; a
        single-file backend like SQLite holds both caches in one store,
        separated by payload kind).  Backends opened from a string are
        owned (closed with the service).
    cache:
        An explicit :class:`SimulationCache` to share between services, or
        ``None`` to disable response caching (in-batch dedup still applies).
    scheduling:
        An existing :class:`~repro.service.SchedulingService` to obtain
        offline schedules through (serial path; the caller keeps ownership).
        ``None`` creates an owned one over ``schedule_cache_dir`` (or
        ``cache_backend``).
    schedule_cache_dir:
        Persistent schedule-cache directory for the owned scheduling service
        *and* for pool workers (each worker opens the shared directory).
        When ``scheduling`` is given with a persistent cache, its backend
        spec is shipped to the workers automatically.
    executor:
        An existing worker pool to execute on instead of creating one (the
        :mod:`repro.server` daemon shares one warm pool between scheduling
        and simulation).  The caller keeps ownership; ``n_workers`` should
        describe its size.
    chunksize:
        Jobs per pool chunk for batch dispatch; ``None`` (the default)
        derives ``max(1, unique_jobs // (n_workers * 4))`` per batch.  Each
        chunk ships its distinct scenario envelopes once and re-opens the
        persistent schedule cache once.  Responses are bit-identical at any
        chunk size.
    """

    def __init__(
        self,
        *,
        n_workers: int = 1,
        cache_dir: Optional[str] = None,
        cache_backend: Optional[Union[str, "CacheBackend"]] = None,
        cache: Union[SimulationCache, None, object] = _CACHE_DEFAULT,
        scheduling: Optional[SchedulingService] = None,
        schedule_cache_dir: Optional[str] = None,
        executor: Optional[Executor] = None,
        chunksize: Optional[int] = None,
    ):
        if not isinstance(n_workers, int) or n_workers < 1:
            raise ValueError(f"n_workers must be a positive integer, got {n_workers!r}")
        if chunksize is not None and (not isinstance(chunksize, int) or chunksize < 1):
            raise ValueError(f"chunksize must be a positive integer, got {chunksize!r}")
        given = [
            name
            for name, present in (
                ("cache_dir", cache_dir is not None),
                ("cache_backend", cache_backend is not None),
                ("cache", cache is not _CACHE_DEFAULT),
            )
            if present
        ]
        if len(given) > 1:
            raise ValueError(
                f"pass at most one of cache_dir, cache_backend and cache, "
                f"not both {' and '.join(given)}"
            )
        if scheduling is not None and schedule_cache_dir is not None:
            raise ValueError(
                "pass either an existing scheduling service or schedule_cache_dir, not both"
            )
        if cache_backend is not None and schedule_cache_dir is not None:
            raise ValueError(
                "pass either cache_backend or schedule_cache_dir, not both"
            )
        self.n_workers = n_workers
        self.chunksize = chunksize
        #: This service's metrics: request counters, per-phase latency
        #: histograms and — for caches the service creates itself — the cache
        #: operation counters.  :meth:`metrics` merges in the registries of a
        #: separately created cache and of the scheduling service.
        self.registry = MetricsRegistry()
        self._owns_cache = False
        if cache_backend is not None:
            from repro.store import simulation_backend

            self.cache: Optional[SimulationCache] = SimulationCache(
                backend=simulation_backend(cache_backend), metrics=self.registry
            )
            self._owns_cache = isinstance(cache_backend, str)
        elif cache is _CACHE_DEFAULT:
            self.cache = SimulationCache(cache_dir, metrics=self.registry)
        else:
            self.cache = cache  # type: ignore[assignment]
        if scheduling is not None:
            self.scheduling = scheduling
            self._owns_scheduling = False
        elif cache_backend is not None and isinstance(cache_backend, str):
            self.scheduling = SchedulingService(cache_backend=cache_backend)
            self._owns_scheduling = True
        else:
            self.scheduling = SchedulingService(cache_dir=schedule_cache_dir)
            self._owns_scheduling = True
        self._executor: Optional[Executor] = executor
        self._owns_executor = executor is None
        #: Requests actually simulated (cache misses) over this service's lifetime.
        self.computed = 0
        #: Phase breakdowns of the most recent :meth:`submit_batch`, one
        #: ``{"trace_id", "phases"}`` dict per request in request order.
        self.last_traces: List[Dict[str, object]] = []

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown()
            self._executor = None
        if self._owns_scheduling:
            self.scheduling.close()
        if self._owns_cache and self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _get_executor(self) -> Executor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._executor

    def _schedule_backend_spec(self) -> Optional[str]:
        """Backend spec of the persistent schedule cache workers should share."""
        cache = self.scheduling.cache
        return cache.backend_spec() if cache is not None else None

    # -- the API -----------------------------------------------------------------

    def submit(self, request: SimulationRequest) -> SimulationResponse:
        """Execute one request (through the cache)."""
        return self.submit_batch([request])[0]

    def execute_in_pool(self, request: SimulationRequest) -> "Future[SimulationResponse]":
        """Submit one request to the worker pool; returns its future.

        The *awaitable unit* of simulation execution (no response-cache
        lookup, no provenance): a schedule the scheduling service already
        holds ships with the job, otherwise the worker resolves it through
        the shared on-disk schedule cache (or computes it in-process).  The
        async serving daemon (:mod:`repro.server`) wraps these futures into
        its event loop; synchronous callers should prefer :meth:`submit`.
        """
        schedule_cache = self.scheduling.cache
        cached = (
            schedule_cache.peek(request.schedule_request().content_key())
            if schedule_cache is not None
            else None
        )
        return self._get_executor().submit(
            execute_simulation_job, (request, self._schedule_backend_spec(), cached)
        )

    def execute_in_pool_observed(
        self, request: SimulationRequest
    ) -> "Future[Tuple[SimulationResponse, Dict[str, object], Dict[str, object]]]":
        """Like :meth:`execute_in_pool`, but through the observed worker entry.

        The future resolves to ``(response, trace_dict, registry_snapshot)``;
        the serving daemon's dispatcher merges the snapshot into its registry
        and keeps the phase breakdown.  The response is identical to
        :meth:`execute_in_pool`'s.
        """
        schedule_cache = self.scheduling.cache
        cached = (
            schedule_cache.peek(request.schedule_request().content_key())
            if schedule_cache is not None
            else None
        )
        return self._get_executor().submit(
            execute_simulation_job_observed,
            (
                request,
                self._schedule_backend_spec(),
                cached,
                new_trace_id(),
                time.monotonic(),
            ),
        )

    #: Value of the ``kind`` label on this service's registry metrics.
    METRICS_KIND = "simulation"

    def submit_batch(
        self, requests: Iterable[SimulationRequest]
    ) -> List[SimulationResponse]:
        """Execute a batch; responses are returned in request order.

        Cached and duplicate requests are not recomputed: every distinct
        content key in the batch is simulated at most once, and each
        response's ``cache`` field records what happened
        (``hit``/``miss``/``disabled``).  Per-request phase breakdowns land
        in :attr:`last_traces` and the phase latency histograms of
        :attr:`registry`; responses carry none of it.
        """
        requests = list(requests)
        responses: List[Optional[SimulationResponse]] = [None] * len(requests)
        keys = [request.content_key() for request in requests]
        traces = [Trace() for _ in requests]
        kind = self.METRICS_KIND

        # One batched lookup covers the whole batch: each distinct key goes to
        # the cache (and its backend) exactly once, however often it repeats.
        # Hit/miss statistics still count per position, and each position's
        # trace carries an equal share of the lookup so phase totals match.
        lookup_started = time.monotonic()
        found = self.cache.get_many(keys) if self.cache is not None else {}
        lookup_share = (
            (time.monotonic() - lookup_started) / len(requests) if requests else 0.0
        )

        pending: Dict[str, List[int]] = {}
        for position, (request, key) in enumerate(zip(requests, keys)):
            trace = traces[position]
            trace.add_phase(PHASE_CACHE_LOOKUP, lookup_share)
            observe_phases(self.registry, kind, trace.phases[-1:])
            cached = found.get(key)
            if cached is not None:
                responses[position] = SimulationResponse.from_result_dict(
                    cached, request_id=request.request_id, cache=CACHE_HIT, cache_key=key
                )
            else:
                pending.setdefault(key, []).append(position)

        computed = self._execute_unique(
            [
                (key, requests[positions[0]], traces[positions[0]])
                for key, positions in pending.items()
            ]
        )

        # Mirror image of the lookup: all freshly computed results persist in
        # one batched write (one SQLite transaction), each leader trace taking
        # an equal share of the store phase.
        store_share = 0.0
        if self.cache is not None and pending:
            store_started = time.monotonic()
            self.cache.put_many(
                [(key, computed[key].result_dict()) for key in pending]
            )
            store_share = (time.monotonic() - store_started) / len(pending)
        for key, positions in pending.items():
            base = computed[key]
            if self.cache is not None:
                leader_trace = traces[positions[0]]
                leader_trace.add_phase(PHASE_STORE, store_share)
                observe_phases(self.registry, kind, leader_trace.phases[-1:])
            for occurrence, position in enumerate(positions):
                if self.cache is None:
                    status = CACHE_DISABLED
                else:
                    status = CACHE_MISS if occurrence == 0 else CACHE_HIT
                responses[position] = replace(
                    base,
                    request_id=requests[position].request_id,
                    cache=status,
                    cache_key=key,
                )
        for response in responses:
            if response is not None:
                self.registry.counter_inc(
                    REQUESTS_TOTAL,
                    help="Requests answered, by kind and cache status.",
                    kind=kind,
                    cache=response.cache,
                )
        # Serial-path executions ran scheduler memo caches in this process;
        # fold their hit/miss deltas into the service registry (pooled chunks
        # already shipped theirs inside the merged snapshots).
        drain_memo_metrics(self.registry)
        self.last_traces = [trace.to_dict() for trace in traces]
        return [response for response in responses if response is not None]

    def _execute_unique(self, work) -> Dict[str, SimulationResponse]:
        """Simulate one request per distinct content key; phases land on the
        leader's trace (``work`` is ``(key, request, trace)`` triples)."""
        if not work:
            return {}
        if self.n_workers == 1 or len(work) == 1:
            results = []
            for _, request, trace in work:
                before = len(trace.phases)
                with activate(trace):
                    results.append(
                        execute_simulation(request, scheduling=self.scheduling)
                    )
                observe_phases(self.registry, self.METRICS_KIND, trace.phases[before:])
        else:
            schedule_backend_spec = self._schedule_backend_spec()
            schedule_cache = self.scheduling.cache
            submitted = time.monotonic()
            # Schedules the dispatching service already holds (e.g. the ones
            # a campaign's schedule cells just computed) ship with the jobs,
            # so workers never recompute them — even when the schedule cache
            # is memory-only.  One batched peek covers all jobs.
            schedule_keys = [
                request.schedule_request().content_key() for _, request, _ in work
            ]
            peeked = (
                schedule_cache.peek_many(schedule_keys)
                if schedule_cache is not None
                else {}
            )
            chunksize = self.chunksize or max(1, len(work) // (self.n_workers * 4))
            executor = self._get_executor()
            futures = []
            for start in range(0, len(work), chunksize):
                chunk = work[start : start + chunksize]
                # Slim payload: each distinct scenario envelope crosses the
                # process boundary once per chunk, not once per job.
                scenarios: Dict[str, Any] = {}
                entries = [
                    slim_simulation_entry(
                        request,
                        peeked.get(schedule_keys[start + offset]),
                        trace.trace_id,
                        scenarios,
                    )
                    for offset, (_, request, trace) in enumerate(chunk)
                ]
                futures.append(
                    executor.submit(
                        execute_simulation_chunk,
                        (scenarios, schedule_backend_spec, entries, submitted),
                    )
                )
            results = []
            for future in futures:
                outcomes, snapshot = future.result()
                # The worker already observed its phases into the shipped
                # snapshot; merging it here is what makes pooled totals equal
                # serial totals.
                self.registry.merge(snapshot)
                for response, trace_dict in outcomes:
                    work[len(results)][2].phases.extend(trace_dict["phases"])
                    results.append(response)
        self.computed += len(results)
        return {key: result for (key, _, _), result in zip(work, results)}

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Lifetime counters: simulations computed plus cache hit/miss/store totals.

        ``cache_backend`` describes where cache entries persist (backend name,
        location, entry count, size) — ``{"name": "memory"}`` when the cache
        only lives in this process.
        """
        stats: Dict[str, object] = {"computed": self.computed}
        if self.cache is not None:
            cache_stats = self.cache.stats()
            stats.update(
                cache_entries=cache_stats["entries"],
                cache_hits=cache_stats["hits"],
                cache_misses=cache_stats["misses"],
                cache_stores=cache_stats["stores"],
                cache_backend=cache_stats["backend"],
            )
        return stats

    def metrics_registries(self) -> List[MetricsRegistry]:
        """Every distinct registry this service's metrics live on (including
        the scheduling service it obtains offline schedules through)."""
        registries = [self.registry]
        if self.cache is not None and self.cache.registry is not self.registry:
            registries.append(self.cache.registry)
        for registry in self.scheduling.metrics_registries():
            if all(registry is not existing for existing in registries):
                registries.append(registry)
        return registries

    def metrics(self) -> Dict[str, object]:
        """Merged snapshot of this service's metrics (counters + histograms)."""
        return merge_snapshots(
            registry.snapshot() for registry in self.metrics_registries()
        )
