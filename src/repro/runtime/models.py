"""Execution models — *how* an offline schedule is executed at run time.

The paper's architectural argument (Sections I and IV) is exactly a choice of
execution model: a **dedicated I/O controller** triggers every job from the
global timer and reproduces the offline start times bit-exactly, while
**CPU-instigated I/O** sends each request across the NoC and pays per-hop
latency plus arbitration jitter.  This module makes that choice *data*: every
model registers a factory under a short name (mirroring
:mod:`repro.scheduling.registry`), and the run-time subsystem resolves
``"name:key=value,..."`` spec strings through :class:`ExecutionModelSpec`
without knowing any concrete class — a new run-time architecture plugs into
every simulation request, campaign and CLI by registering itself.

Built-in models:

``dedicated-controller``
    The paper's architecture: the schedule is pre-loaded into the I/O
    controller and the synchroniser triggers every job from the global timer.
``cpu-instigated``
    Each I/O request is injected by an application CPU at the job's offline
    start time, behind ``background_packets_per_job`` competing packets, so
    the operation starts only after delivery — exactness collapses.
``cpu-instigated-prioritized``
    As ``cpu-instigated``, but I/O requests win link arbitration against the
    background burst (the burst is injected behind the request instead of in
    front of it): jitter shrinks, yet the deterministic per-hop latency still
    shifts every start time.

Every model's :meth:`~ExecutionModel.execute` is pure in its arguments (the
only randomness flows through the explicit ``seed``), which is what lets
:mod:`repro.runtime.service` content-address simulation responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.metrics import aggregate_psi, aggregate_upsilon
from repro.core.schedule import Schedule, ScheduleEntry
from repro.core.task import TaskSet
from repro.noc.packet import Packet
from repro.scenario import Platform
from repro.service.spec import SchedulerSpec
from repro.sim.engine import Simulator

#: name -> factory.  Aliases map to the same factory object.
_REGISTRY: Dict[str, Callable[..., "ExecutionModel"]] = {}


@dataclass
class ExecutionOutcome:
    """What one execution-model run produced (plain data + schedules).

    ``runtime_schedules`` hold the *actual* start times observed at run time;
    ``offline_schedules`` the start times the offline method computed.  The
    derived properties (`psi`, `upsilon`, `accuracy`, `matches_offline`) are
    the run-time counterparts of the offline metrics.
    """

    runtime_schedules: Dict[str, Schedule]
    offline_schedules: Dict[str, Schedule]
    executed_jobs: int
    skipped_jobs: int
    faults_detected: int
    mean_noc_latency: float = 0.0
    max_noc_latency: int = 0
    events_processed: int = 0
    #: True when the simulator's ``max_events`` budget ran out mid-horizon.
    exhausted: bool = False
    #: Stored trace events per kind (structured summary, not the full trace).
    trace_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def psi(self) -> float:
        """Run-time Psi (fraction of executed jobs started at their ideal times)."""
        return aggregate_psi(self.runtime_schedules.values())

    @property
    def upsilon(self) -> float:
        """Run-time Upsilon of the executed jobs."""
        return aggregate_upsilon(self.runtime_schedules.values())

    @property
    def offline_jobs(self) -> int:
        return sum(len(schedule.entries) for schedule in self.offline_schedules.values())

    def start_time_deviations(self) -> List[int]:
        """Per-job |runtime start - offline start| for every executed job."""
        deviations: List[int] = []
        for device, runtime in self.runtime_schedules.items():
            offline = self.offline_schedules.get(device)
            if offline is None:
                continue
            for entry in runtime.entries:
                if entry.job in offline:
                    deviations.append(abs(entry.start - offline.start_of(entry.job)))
        return deviations

    @property
    def accuracy(self) -> float:
        """Fraction of *offline* jobs executed exactly at their offline start.

        Jobs skipped at run time (fault recovery, horizon cut-offs) count
        against accuracy, so a model cannot look accurate by dropping work.
        """
        total = self.offline_jobs
        if total == 0:
            return 1.0
        exact = sum(1 for deviation in self.start_time_deviations() if deviation == 0)
        return exact / total

    @property
    def matches_offline(self) -> bool:
        """True iff every executed job started exactly at its offline start time."""
        for device, runtime in self.runtime_schedules.items():
            offline = self.offline_schedules.get(device)
            if offline is None:
                return False
            for entry in runtime.entries:
                if entry.job not in offline or offline.start_of(entry.job) != entry.start:
                    return False
        return True


class ExecutionModel:
    """Interface every execution model implements (duck-typed; this class
    documents the contract and provides the shared NoC statistics helper)."""

    #: Registry name the model was created under (set by subclasses).
    name: str = ""

    def execute(
        self,
        task_set: TaskSet,
        schedules: Dict[str, Schedule],
        platform: Platform,
        *,
        seed: int = 0,
        max_events: Optional[int] = None,
    ) -> ExecutionOutcome:
        raise NotImplementedError


# -- the registry (mirrors repro.scheduling.registry) ---------------------------


def register_execution_model(
    name: str,
    factory: Optional[Callable[..., ExecutionModel]] = None,
    *,
    aliases: Sequence[str] = (),
    overwrite: bool = False,
):
    """Register an execution-model factory under ``name`` (plus aliases).

    Usable as a class decorator or called directly with a factory.  Duplicate
    names raise ``ValueError`` unless ``overwrite=True``.
    """

    def _register(target: Callable[..., ExecutionModel]) -> Callable[..., ExecutionModel]:
        keys = (name, *aliases)
        if not overwrite:
            for key in keys:
                if key in _REGISTRY and _REGISTRY[key] is not target:
                    raise ValueError(
                        f"execution model {key!r} is already registered "
                        f"(to {_REGISTRY[key]!r}); pass overwrite=True to replace it"
                    )
        for key in keys:
            _REGISTRY[key] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def unregister_execution_model(name: str) -> None:
    """Remove ``name`` from the registry (aliases must be removed separately)."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown execution model {name!r}")
    del _REGISTRY[name]


def execution_model_registered(name: str) -> bool:
    return name in _REGISTRY


def available_execution_models() -> Tuple[str, ...]:
    """Sorted names (including aliases) of every registered execution model."""
    return tuple(sorted(_REGISTRY))


def list_execution_models() -> Dict[str, str]:
    """Name -> one-line description of every registered model (CLI listings)."""
    listing = {}
    for name in available_execution_models():
        factory = _REGISTRY[name]
        doc = (factory.__doc__ or "").strip().splitlines()
        listing[name] = doc[0] if doc else ""
    return listing


def format_execution_model_listing() -> str:
    """The ``--list-execution-models`` text the CLIs print, one model per line."""
    return "\n".join(
        f"{name:<28} {description}"
        for name, description in list_execution_models().items()
    )


def create_execution_model(name: str, **overrides: Any) -> ExecutionModel:
    """Instantiate the execution model registered under ``name``.

    Keyword ``overrides`` are forwarded to the factory verbatim — the hook
    spec strings such as ``"cpu-instigated:jitter_window=2"`` resolve
    through.  Unknown names raise ``KeyError`` listing the registered models;
    a rejected keyword raises ``TypeError`` naming the factory.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown execution model {name!r}; "
            f"registered: {', '.join(available_execution_models())}"
        ) from None
    try:
        return factory(**overrides)
    except TypeError as error:
        raise TypeError(
            f"execution model {name!r} (factory {factory!r}) rejected "
            f"keyword overrides {sorted(overrides)}: {error}"
        ) from error


@dataclass(frozen=True)
class ExecutionModelSpec(SchedulerSpec):
    """An execution-model name plus typed options, in the spec-string grammar.

    Reuses the (property-tested) ``"name:key=value,..."`` grammar and the
    lossless parse/format/dict round-trips of
    :class:`~repro.service.spec.SchedulerSpec`; only :meth:`resolve` differs —
    it goes through the execution-model registry instead of the scheduler
    registry.
    """

    @classmethod
    def coerce(cls, spec: Union[str, SchedulerSpec]) -> "ExecutionModelSpec":
        """Accept a spec string, an :class:`ExecutionModelSpec`, or a plain
        :class:`SchedulerSpec` (rewrapped — the grammar is shared)."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, SchedulerSpec):
            return cls(name=spec.name, options=spec.options)
        return cls.parse(spec)

    def resolve(self) -> ExecutionModel:
        return create_execution_model(self.name, **self.options_dict())


# -- built-in models ------------------------------------------------------------


@register_execution_model("dedicated-controller", aliases=("controller",))
class DedicatedControllerModel(ExecutionModel):
    """the paper's dedicated I/O controller: timer-triggered, bit-exact starts"""

    name = "dedicated-controller"

    def execute(
        self,
        task_set: TaskSet,
        schedules: Dict[str, Schedule],
        platform: Platform,
        *,
        seed: int = 0,
        max_events: Optional[int] = None,
    ) -> ExecutionOutcome:
        controller = platform.controller
        controller.preload_taskset(task_set)
        controller.load_system_schedule(schedules)
        simulator = Simulator()
        run = controller.run(simulator, max_events=max_events)
        return ExecutionOutcome(
            runtime_schedules=run.runtime_schedules,
            offline_schedules=run.offline_schedules,
            executed_jobs=run.executed_jobs,
            skipped_jobs=run.skipped_jobs,
            faults_detected=run.faults_detected,
            # No run-time NoC traffic: triggering is local to the controller.
            mean_noc_latency=0.0,
            max_noc_latency=0,
            events_processed=simulator.events_processed,
            exhausted=simulator.exhausted,
            trace_counts=simulator.trace.counts_by_kind(),
        )


class _RemoteCPUBase(ExecutionModel):
    """Shared machinery of the CPU-instigated models.

    Each job's I/O request is injected from a per-task CPU tile; a burst of
    ``background_packets_per_job`` competing packets (platform spec) shares
    the mesh links around every request.  Subclasses decide whether the burst
    is injected *in front of* the request (plain CPU-instigated: the request
    queues behind it, start times jitter) or *behind* it (prioritized: the
    request wins arbitration, only the deterministic path latency remains).
    """

    #: Inject the background burst before the I/O request (plain model).
    background_first = True

    def __init__(
        self,
        *,
        request_size_flits: int = 4,
        background_size_flits: int = 8,
        jitter_window: int = 5,
    ):
        for label, value in (
            ("request_size_flits", request_size_flits),
            ("background_size_flits", background_size_flits),
        ):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(f"{label} must be a positive integer, got {value!r}")
        if not isinstance(jitter_window, int) or isinstance(jitter_window, bool) or jitter_window < 1:
            raise ValueError(f"jitter_window must be a positive integer, got {jitter_window!r}")
        self.request_size_flits = request_size_flits
        self.background_size_flits = background_size_flits
        self.jitter_window = jitter_window

    def execute(
        self,
        task_set: TaskSet,
        schedules: Dict[str, Schedule],
        platform: Platform,
        *,
        seed: int = 0,
        max_events: Optional[int] = None,
    ) -> ExecutionOutcome:
        network = platform.network
        background_per_job = platform.spec.background_packets_per_job
        rng = np.random.default_rng(seed)
        io_tile = platform.io_tile
        cpu_tiles = platform.cpu_tiles()

        cpu_of_task = {
            task.name: cpu_tiles[int(rng.integers(0, len(cpu_tiles)))] for task in task_set
        }

        # Requests sorted by injection (offline start) time, so link state
        # evolves chronologically.
        all_entries: List[ScheduleEntry] = [
            entry for schedule in schedules.values() for entry in schedule.sorted_entries()
        ]
        all_entries.sort(key=lambda e: e.start)

        runtime: Dict[str, Schedule] = {
            device: Schedule(device=device) for device in schedules
        }
        device_free_at: Dict[str, int] = {device: 0 for device in schedules}

        # Every packet injection (request or background) is one simulation
        # event, so the ``max_events`` budget bounds the NoC work exactly as
        # it bounds the controller's event loop; jobs the budget cuts off
        # never execute and count as skipped.
        events_per_job = 1 + background_per_job
        executed = 0
        exhausted = False
        for entry in all_entries:
            if (
                max_events is not None
                and len(network.delivered) + events_per_job > max_events
            ):
                exhausted = True
                break
            source = cpu_of_task[entry.job.task.name]
            if self.background_first:
                self._inject_background(network, rng, cpu_tiles, io_tile, entry.start, background_per_job)
            request = Packet(
                source=source,
                destination=io_tile,
                size_flits=self.request_size_flits,
                kind="io-request",
            )
            delivered = network.send(request, entry.start)
            if not self.background_first:
                self._inject_background(network, rng, cpu_tiles, io_tile, entry.start, background_per_job, behind=True)
            device = entry.job.device
            start = max(delivered, device_free_at[device])
            runtime[device].add(ScheduleEntry(job=entry.job, start=start))
            device_free_at[device] = start + entry.job.wcet
            executed += 1

        return ExecutionOutcome(
            runtime_schedules=runtime,
            offline_schedules={device: schedule.copy() for device, schedule in schedules.items()},
            executed_jobs=executed,
            skipped_jobs=len(all_entries) - executed,
            faults_detected=0,
            mean_noc_latency=network.mean_latency(kind="io-request"),
            max_noc_latency=network.max_latency(kind="io-request"),
            events_processed=len(network.delivered),
            exhausted=exhausted,
            trace_counts={"packet-delivered": len(network.delivered)},
        )

    def _inject_background(
        self,
        network,
        rng,
        cpu_tiles,
        io_tile,
        start: int,
        count: int,
        *,
        behind: bool = False,
    ) -> None:
        for _ in range(count):
            bg_source = cpu_tiles[int(rng.integers(0, len(cpu_tiles)))]
            jitter = int(rng.integers(0, self.jitter_window))
            at = start + jitter if behind else max(0, start - jitter)
            network.send(
                Packet(
                    source=bg_source,
                    destination=io_tile,
                    size_flits=self.background_size_flits,
                    kind="background",
                ),
                at,
            )


@register_execution_model("cpu-instigated", aliases=("remote-cpu",))
class CPUInstigatedModel(_RemoteCPUBase):
    """CPU-instigated I/O over the NoC: per-hop latency + arbitration jitter"""

    name = "cpu-instigated"
    background_first = True


@register_execution_model("cpu-instigated-prioritized")
class CPUInstigatedPrioritizedModel(_RemoteCPUBase):
    """CPU-instigated I/O with prioritized requests: jitter-free, latency remains"""

    name = "cpu-instigated-prioritized"
    background_first = False


#: The built-in model names, in documentation order.
BUILTIN_EXECUTION_MODELS: Tuple[str, ...] = (
    "dedicated-controller",
    "cpu-instigated",
    "cpu-instigated-prioritized",
)
