"""repro.runtime — run-time execution as a first-class, cacheable subsystem.

The paper's run-time half (Sections I and IV) made declarative: one
:class:`SimulationRequest` names a scenario (workload + platform + fault
plan), a schedule method and a registered **execution model**, and the pure
:func:`execute_simulation` answers with run-time accuracy, Psi/Upsilon, fault
counters, NoC latency and a structured trace summary — bit-identically at any
worker count.

Three layers, mirroring the scheduling stack one level down:

* **models** — the execution-model registry
  (:func:`register_execution_model` / :func:`create_execution_model`) with
  the built-in ``dedicated-controller``, ``cpu-instigated`` and
  ``cpu-instigated-prioritized`` architectures; new run-time architectures
  are data, not forks.
* **messages** — frozen, versioned ``repro/sim-request``/``repro/sim-response``
  envelopes with content keys over scenario × method × execution model ×
  horizon (the fault plan rides inside the scenario's key).
* **service** — :class:`SimulationService`: worker pool, in-batch dedup and a
  content-addressed response cache; schedules are obtained through the
  existing :class:`~repro.service.SchedulingService`, so simulations share
  schedule-cache entries with sweeps, batches and campaigns.

CLI: ``python -m repro.runtime`` (JSONL batches, declarative ``--scenario``
mode, ``--list-execution-models``).
"""

from repro.runtime.messages import (
    SIM_REQUEST_KIND,
    SIM_REQUEST_VERSION,
    SIM_RESPONSE_KIND,
    SIM_RESPONSE_VERSION,
    SimulationRequest,
    SimulationResponse,
)
from repro.runtime.models import (
    BUILTIN_EXECUTION_MODELS,
    ExecutionModel,
    ExecutionModelSpec,
    ExecutionOutcome,
    available_execution_models,
    create_execution_model,
    execution_model_registered,
    format_execution_model_listing,
    list_execution_models,
    register_execution_model,
    unregister_execution_model,
)
from repro.runtime.service import (
    SIM_CACHE_ENTRY_KIND,
    SIM_CACHE_ENTRY_VERSION,
    SimulationCache,
    SimulationService,
    derive_execution_seed,
    execute_simulation,
)

__all__ = [
    "SimulationRequest",
    "SimulationResponse",
    "SimulationService",
    "SimulationCache",
    "ExecutionModel",
    "ExecutionModelSpec",
    "ExecutionOutcome",
    "BUILTIN_EXECUTION_MODELS",
    "SIM_REQUEST_KIND",
    "SIM_REQUEST_VERSION",
    "SIM_RESPONSE_KIND",
    "SIM_RESPONSE_VERSION",
    "SIM_CACHE_ENTRY_KIND",
    "SIM_CACHE_ENTRY_VERSION",
    "register_execution_model",
    "unregister_execution_model",
    "create_execution_model",
    "execution_model_registered",
    "available_execution_models",
    "list_execution_models",
    "format_execution_model_listing",
    "execute_simulation",
    "derive_execution_seed",
]
