"""Typed request/response envelopes of the run-time simulation subsystem.

Both messages follow the exact discipline of the scheduling-service envelopes
(:mod:`repro.service.messages`): frozen, pure-data values with a lossless
round-trip through the versioned ``{kind, version, data}`` JSON envelope
(``kind=repro/sim-request|response``, version 1) and a content key hashing
precisely the fields that determine the outcome.

A :class:`SimulationRequest` asks one complete run-time question: *execute
scenario S's system i, scheduled by method M, on execution model X, over
horizon H*.  Its :meth:`~SimulationRequest.content_key` covers the scenario's
own content key (which folds in the workload, platform **and fault plan**),
the schedule-method spec, the execution model, the horizon, the event budget
and the execution seed — so any change to any of them is a cache miss, never
a silently reused stale simulation.

A :class:`SimulationResponse` separates the deterministic *result* (accuracy,
run-time Psi/Upsilon, fault counters, NoC latency, trace summary — returned
bit-identically by :func:`repro.runtime.service.execute_simulation` at any
worker count) from per-execution *provenance* (cache status, content key,
elapsed wall-clock time), exactly like
:class:`~repro.service.messages.ScheduleResponse`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.serialization import (
    content_hash,
    parse_versioned_payload,
    taskset_from_dict,
    taskset_to_dict,
    versioned_payload,
)
from repro.core.task import TaskSet
from repro.scenario import Scenario, create_scenario, materialize
from repro.service.messages import CACHE_DISABLED, ScheduleRequest
from repro.service.spec import SchedulerSpec
from repro.runtime.models import ExecutionModelSpec

SIM_REQUEST_KIND = "repro/sim-request"
SIM_REQUEST_VERSION = 1
SIM_RESPONSE_KIND = "repro/sim-response"
SIM_RESPONSE_VERSION = 1


@dataclass(frozen=True)
class SimulationRequest:
    """One question to the simulation service: *run this scenario, that way*.

    The scenario supplies the platform (controller + NoC) and the fault plan,
    and — by default — the workload: ``system_index`` selects which of the
    scenario's deterministic systems to draw.  An explicit ``task_set``
    overrides the drawn workload (the path :func:`run_controller_sim
    <repro.experiments.controller_sim.run_controller_sim>` uses to simulate a
    system it generated itself); the platform and faults still come from the
    scenario.

    ``method`` is the offline scheduling method
    (:class:`~repro.service.SchedulerSpec` value or spec string) whose
    schedule is executed; ``execution_model`` the registered run-time
    architecture executing it.  ``seed`` feeds the execution model's RNG
    (CPU-tile placement, background-traffic jitter); ``None`` derives one
    from the request's content, so unseeded requests are still pure.
    ``max_events`` bounds the discrete-event simulation; a budget that runs
    out mid-horizon is reported via ``SimulationResponse.exhausted``.
    """

    scenario: Optional[Scenario] = None
    method: Optional[SchedulerSpec] = "static"
    execution_model: Optional[ExecutionModelSpec] = "dedicated-controller"
    system_index: int = 0
    task_set: Optional[TaskSet] = None
    horizon: Optional[int] = None
    max_events: Optional[int] = None
    seed: Optional[int] = None
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scenario is None:
            raise ValueError("a scenario is required (it supplies platform and faults)")
        object.__setattr__(self, "scenario", create_scenario(self.scenario))
        if self.method is None:
            raise ValueError("a schedule-method spec is required")
        object.__setattr__(self, "method", SchedulerSpec.coerce(self.method))
        if self.execution_model is None:
            raise ValueError("an execution model is required")
        object.__setattr__(
            self, "execution_model", ExecutionModelSpec.coerce(self.execution_model)
        )
        if not isinstance(self.system_index, int) or self.system_index < 0:
            raise ValueError(
                f"system_index must be a non-negative integer, got {self.system_index!r}"
            )
        if self.task_set is not None and self.system_index != 0:
            raise ValueError("an explicit task_set fixes the workload; system_index must be 0")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon!r}")
        if self.max_events is not None and self.max_events <= 0:
            raise ValueError(f"max_events must be positive, got {self.max_events!r}")
        if self.seed is not None and (not isinstance(self.seed, int) or self.seed < 0):
            raise ValueError(f"seed must be a non-negative integer, got {self.seed!r}")

    # -- derived views -----------------------------------------------------------

    def effective_task_set(self) -> TaskSet:
        """The concrete workload: the explicit one, or the scenario's system."""
        if self.task_set is not None:
            return self.task_set
        cached = getattr(self, "_materialized_task_set", None)
        if cached is None:
            cached = materialize(self.scenario, self.system_index).task_set
            object.__setattr__(self, "_materialized_task_set", cached)
        return cached

    def schedule_request(self) -> ScheduleRequest:
        """The scheduling-service request obtaining this simulation's schedule.

        Built to be content-identical to what a direct service call, an
        experiment sweep or a campaign cell would submit for the same
        workload/method, so simulations share schedule-cache entries with
        every other consumer instead of recomputing schedules.
        """
        if self.task_set is not None:
            return ScheduleRequest(
                task_set=self.task_set,
                spec=self.method,
                horizon=self.horizon,
                request_id=self.request_id,
            )
        return ScheduleRequest(
            scenario=self.scenario,
            system_index=self.system_index,
            spec=self.method,
            horizon=self.horizon,
            request_id=self.request_id,
        )

    def content_key(self) -> str:
        """Content-address of the simulation question (excludes ``request_id``).

        Hashes the scenario's content key (covering workload, platform and
        fault plan), the workload override (when explicit), the system index,
        the schedule-method spec, the execution model, the horizon, the event
        budget and the seed.

        The request is frozen, so the key is hashed once and memoised — repeat
        calls (cache lookup, seed derivation, batch dedup) return the cached
        string.
        """
        cached = self.__dict__.get("_content_key")
        if cached is not None:
            return cached
        key = content_hash(
            {
                "scenario": self.scenario.content_key(),
                "workload": (
                    taskset_to_dict(self.task_set) if self.task_set is not None else None
                ),
                "system_index": self.system_index,
                "method": self.method.to_dict(),
                "execution_model": self.execution_model.to_dict(),
                "horizon": self.horizon,
                "max_events": self.max_events,
                "seed": self.seed,
            }
        )
        object.__setattr__(self, "_content_key", key)
        return key

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Slim pickles: drop the memoised task set, keep the content key.

        The materialised task set can dwarf the request itself; any receiver
        re-materialises it deterministically on demand.  The content key is a
        small string and saves the receiver a full canonical-JSON hash, so it
        rides along.
        """
        state = dict(self.__dict__)
        state.pop("_materialized_task_set", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.request_id,
            "scenario": self.scenario.to_dict(),
            "system_index": self.system_index,
            "method": self.method.to_dict(),
            "execution_model": self.execution_model.to_dict(),
            "horizon": self.horizon,
            "max_events": self.max_events,
            "seed": self.seed,
        }
        if self.task_set is not None:
            data["taskset"] = taskset_to_dict(self.task_set)
        return versioned_payload(SIM_REQUEST_KIND, SIM_REQUEST_VERSION, data)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationRequest":
        _, data = parse_versioned_payload(
            dict(payload), SIM_REQUEST_KIND, max_version=SIM_REQUEST_VERSION
        )
        task_set = data.get("taskset")
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            method=SchedulerSpec.from_dict(data["method"]),
            execution_model=ExecutionModelSpec.from_dict(data["execution_model"]),
            system_index=int(data.get("system_index", 0)),
            task_set=taskset_from_dict(task_set) if task_set is not None else None,
            horizon=data.get("horizon"),
            max_events=data.get("max_events"),
            seed=data.get("seed"),
            request_id=data.get("id"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimulationRequest":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SimulationResponse:
    """The simulation service's answer: deterministic result + provenance.

    ``method`` is the canonical string of the schedule-method spec actually
    executed (including any seed the scheduling service derived), and
    ``execution_model`` the canonical model spec, so the response alone
    reproduces the run.  ``trace`` is a structured summary of the simulation
    trace — stored-event counts per kind plus start-time-deviation statistics
    — never the full event list.
    """

    request_id: Optional[str]
    scenario: str
    method: str
    execution_model: str
    system_index: int
    horizon: int
    schedulable: bool
    accuracy: float
    psi: float
    upsilon: float
    offline_psi: float
    offline_upsilon: float
    matches_offline: bool
    executed_jobs: int
    skipped_jobs: int
    faults_detected: int
    mean_noc_latency: float
    max_noc_latency: int
    events_processed: int
    exhausted: bool
    trace: Dict[str, Any] = field(default_factory=dict)
    # -- provenance (excluded from result_dict and from caching) -----------------
    cache: str = CACHE_DISABLED
    cache_key: Optional[str] = None
    elapsed_s: float = 0.0

    def result_dict(self) -> Dict[str, Any]:
        """The deterministic portion of the response (what the cache stores)."""
        return {
            "scenario": self.scenario,
            "method": self.method,
            "execution_model": self.execution_model,
            "system_index": self.system_index,
            "horizon": self.horizon,
            "schedulable": self.schedulable,
            "accuracy": self.accuracy,
            "psi": self.psi,
            "upsilon": self.upsilon,
            "offline_psi": self.offline_psi,
            "offline_upsilon": self.offline_upsilon,
            "matches_offline": self.matches_offline,
            "executed_jobs": self.executed_jobs,
            "skipped_jobs": self.skipped_jobs,
            "faults_detected": self.faults_detected,
            "mean_noc_latency": self.mean_noc_latency,
            "max_noc_latency": self.max_noc_latency,
            "events_processed": self.events_processed,
            "exhausted": self.exhausted,
            "trace": self.trace,
        }

    @classmethod
    def from_result_dict(
        cls,
        data: Mapping[str, Any],
        *,
        request_id: Optional[str] = None,
        cache: str = CACHE_DISABLED,
        cache_key: Optional[str] = None,
        elapsed_s: float = 0.0,
    ) -> "SimulationResponse":
        """Rebuild a response around a stored deterministic result."""
        return cls(
            request_id=request_id,
            scenario=str(data["scenario"]),
            method=str(data["method"]),
            execution_model=str(data["execution_model"]),
            system_index=int(data["system_index"]),
            horizon=int(data["horizon"]),
            schedulable=bool(data["schedulable"]),
            accuracy=float(data["accuracy"]),
            psi=float(data["psi"]),
            upsilon=float(data["upsilon"]),
            offline_psi=float(data["offline_psi"]),
            offline_upsilon=float(data["offline_upsilon"]),
            matches_offline=bool(data["matches_offline"]),
            executed_jobs=int(data["executed_jobs"]),
            skipped_jobs=int(data["skipped_jobs"]),
            faults_detected=int(data["faults_detected"]),
            mean_noc_latency=float(data["mean_noc_latency"]),
            max_noc_latency=int(data["max_noc_latency"]),
            events_processed=int(data["events_processed"]),
            exhausted=bool(data["exhausted"]),
            trace=dict(data.get("trace") or {}),
            cache=cache,
            cache_key=cache_key,
            elapsed_s=elapsed_s,
        )

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return versioned_payload(
            SIM_RESPONSE_KIND,
            SIM_RESPONSE_VERSION,
            {
                "id": self.request_id,
                "result": self.result_dict(),
                "cache": {"status": self.cache, "key": self.cache_key},
                "timing": {"elapsed_s": self.elapsed_s},
            },
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationResponse":
        _, data = parse_versioned_payload(
            dict(payload), SIM_RESPONSE_KIND, max_version=SIM_RESPONSE_VERSION
        )
        cache = data.get("cache") or {}
        timing = data.get("timing") or {}
        return cls.from_result_dict(
            data["result"],
            request_id=data.get("id"),
            cache=str(cache.get("status", CACHE_DISABLED)),
            cache_key=cache.get("key"),
            elapsed_s=float(timing.get("elapsed_s", 0.0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimulationResponse":
        return cls.from_dict(json.loads(text))
