"""Scenario registry — named, reusable scenario presets.

Mirrors the scheduler registry (:mod:`repro.scheduling.registry`): presets
register themselves under short names, and every entry point resolves them
through :func:`create_scenario` without knowing how they are built.  A preset
is registered as a zero-argument factory (or a ready :class:`Scenario`), so
registering costs nothing until the scenario is actually requested.

:func:`create_scenario` is deliberately liberal in what it accepts — a
:class:`Scenario`, a registered name, inline JSON text, or a plain payload
dict — because that is exactly the set of forms a scenario takes on its way
through CLIs, request envelopes and config files.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.hardware.faults import FaultSpec
from repro.scenario.spec import FaultPlanSpec, PlatformSpec, Scenario, WorkloadSpec
from repro.taskgen import GeneratorConfig

#: name -> zero-argument factory returning the preset scenario.
_REGISTRY: Dict[str, Callable[[], Scenario]] = {}


def register_scenario(
    name: str,
    factory: Optional[Union[Scenario, Callable[[], Scenario]]] = None,
    *,
    overwrite: bool = False,
):
    """Register a scenario (or factory) under ``name``.

    Usable as a decorator on a zero-argument factory function or called
    directly with a ready :class:`Scenario`.  Duplicate names raise
    ``ValueError`` unless ``overwrite=True``.
    """

    def _register(target: Union[Scenario, Callable[[], Scenario]]):
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"scenario {name!r} is already registered; pass overwrite=True to replace it"
            )
        if isinstance(target, Scenario):
            _REGISTRY[name] = lambda: target
        else:
            _REGISTRY[name] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def unregister_scenario(name: str) -> None:
    """Remove ``name`` from the registry."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown scenario {name!r}")
    del _REGISTRY[name]


def scenario_registered(name: str) -> bool:
    return name in _REGISTRY


def available_scenarios() -> Tuple[str, ...]:
    """Sorted names of every registered scenario preset."""
    return tuple(sorted(_REGISTRY))


def list_scenarios() -> Dict[str, str]:
    """Name -> one-line description of every registered preset (CLI listings)."""
    return {name: _REGISTRY[name]().description for name in available_scenarios()}


def format_scenario_listing() -> str:
    """The ``--list-scenarios`` text the CLIs print, one preset per line.

    Each line carries the name, the preset's content key (the hash that
    addresses its cache entries — so two listings agree on whether a cached
    schedule is reusable), and the one-line description.
    """
    lines = []
    for name in available_scenarios():
        scenario = _REGISTRY[name]()
        lines.append(f"{name:<20} {scenario.content_key()}  {scenario.description}")
    return "\n".join(lines)


def create_scenario(ref: Union[str, Mapping, Scenario]) -> Scenario:
    """Resolve any scenario reference into a concrete :class:`Scenario`.

    Accepts (in order): a ready :class:`Scenario`; a payload mapping
    (:meth:`Scenario.from_dict`); a registered preset name; inline JSON text
    (anything starting with ``{``).  Unknown names raise ``KeyError`` listing
    the registered presets.
    """
    if isinstance(ref, Scenario):
        return ref
    if isinstance(ref, Mapping):
        return Scenario.from_dict(ref)
    if not isinstance(ref, str):
        raise TypeError(f"cannot resolve a scenario from {type(ref).__name__}")
    text = ref.strip()
    if text.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid inline scenario JSON: {error}") from None
        return Scenario.from_dict(payload)
    if text not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {text!r}; registered: {', '.join(available_scenarios())}"
        )
    return _REGISTRY[text]()


# -- the built-in presets ------------------------------------------------------


@register_scenario("paper-default")
def _paper_default() -> Scenario:
    return Scenario(
        name="paper-default",
        description="the paper's evaluation setup: UUniFast at 0.05 U/task, "
        "1440 ms hyper-period, one GPIO controller on a 4x4 mesh",
    )


@register_scenario("paper-scale")
def _paper_scale() -> Scenario:
    return Scenario(
        name="paper-scale",
        description="the paper's setup at evaluation scale: four devices, "
        "full period spread, an 8x8 mesh with heavier background traffic",
        workload=WorkloadSpec(
            utilisation=0.7,
            generator=GeneratorConfig(min_period_ms=10, max_period_ms=None, n_devices=4),
        ),
        platform=PlatformSpec(mesh_width=8, mesh_height=8, background_packets_per_job=4),
    )


@register_scenario("short-hyperperiod")
def _short_hyperperiod() -> Scenario:
    return Scenario(
        name="short-hyperperiod",
        description="a 360 ms hyper-period with 12-120 ms periods: more jobs "
        "per task, denser scheduling tables",
        workload=WorkloadSpec(
            utilisation=0.4,
            generator=GeneratorConfig(
                hyperperiod_ms=360, min_period_ms=12, max_period_ms=120
            ),
        ),
    )


@register_scenario("bursty-periods")
def _bursty_periods() -> Scenario:
    return Scenario(
        name="bursty-periods",
        description="periods confined to the 48-96 ms band: near-harmonic "
        "release bursts contending for the same window",
        workload=WorkloadSpec(
            utilisation=0.6,
            generator=GeneratorConfig(min_period_ms=48, max_period_ms=96),
        ),
    )


@register_scenario("faulty-controller")
def _faulty_controller() -> Scenario:
    return Scenario(
        name="faulty-controller",
        description="the paper's setup with run-time faults: a missing enable "
        "request, a late request and a corrupted command sequence",
        faults=FaultPlanSpec(
            faults=(
                FaultSpec(kind="missing-request", task_name="tau0"),
                FaultSpec(kind="late-request", task_name="tau1", delay=3),
                FaultSpec(kind="corrupted-command", task_name="tau2"),
            )
        ),
    )


@register_scenario("wide-noc")
def _wide_noc() -> Scenario:
    return Scenario(
        name="wide-noc",
        description="an 8x8 mesh with slower links and heavy background "
        "traffic: long, jittery request paths for CPU-instigated I/O",
        workload=WorkloadSpec(utilisation=0.5),
        platform=PlatformSpec(
            mesh_width=8,
            mesh_height=8,
            routing_delay=3,
            flit_delay=2,
            background_packets_per_job=6,
        ),
    )


#: The preset names, in registration (documentation) order.
PRESET_SCENARIOS: Sequence[str] = (
    "paper-default",
    "paper-scale",
    "short-hyperperiod",
    "bursty-periods",
    "faulty-controller",
    "wide-noc",
)
