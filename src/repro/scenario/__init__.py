"""repro.scenario — declarative, versioned evaluation scenarios.

One :class:`Scenario` value describes everything an evaluation run needs
beyond the scheduling method: the synthetic workload
(:class:`WorkloadSpec`), the execution platform (:class:`PlatformSpec` —
controller + NoC), and the injected faults (:class:`FaultPlanSpec`).
Scenarios round-trip losslessly through versioned JSON
(``kind="repro/scenario"``), are content-addressable, and materialise
deterministically: :func:`materialize` is a pure function of
``(scenario, system_index)``, bit-identical at any worker count.

Named presets (``paper-default``, ``paper-scale``, ``short-hyperperiod``,
``bursty-periods``, ``faulty-controller``, ``wide-noc``) resolve through
:func:`create_scenario`, which also accepts inline JSON and payload dicts —
the scheduling service, the experiment engine and both CLIs all consume
scenarios through that one function, so a new workload/platform variant is a
data change, not a code change.
"""

from repro.scenario.materialize import (
    MaterializedScenario,
    Platform,
    build_platform,
    materialize,
    system_seed,
)
from repro.scenario.registry import (
    PRESET_SCENARIOS,
    available_scenarios,
    create_scenario,
    format_scenario_listing,
    list_scenarios,
    register_scenario,
    scenario_registered,
    unregister_scenario,
)
from repro.scenario.spec import (
    DEVICE_TYPES,
    FAULT_KINDS,
    MISSING_REQUEST_POLICIES,
    SCENARIO_KIND,
    SCENARIO_VERSION,
    FaultPlanSpec,
    FaultSpec,
    PlatformSpec,
    Scenario,
    ScenarioLike,
    WorkloadSpec,
)

__all__ = [
    "Scenario",
    "WorkloadSpec",
    "PlatformSpec",
    "FaultPlanSpec",
    "FaultSpec",
    "FAULT_KINDS",
    "ScenarioLike",
    "SCENARIO_KIND",
    "SCENARIO_VERSION",
    "DEVICE_TYPES",
    "MISSING_REQUEST_POLICIES",
    "register_scenario",
    "unregister_scenario",
    "create_scenario",
    "scenario_registered",
    "available_scenarios",
    "list_scenarios",
    "format_scenario_listing",
    "PRESET_SCENARIOS",
    "materialize",
    "MaterializedScenario",
    "Platform",
    "build_platform",
    "system_seed",
]
