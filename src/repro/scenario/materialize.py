"""Turning a declarative :class:`~repro.scenario.spec.Scenario` into live objects.

:func:`materialize` is the single entry point every consumer shares: given a
scenario and a system index it builds the concrete ``(TaskSet, Platform,
FaultInjector)`` triple — a fresh synthetic system drawn from the scenario's
workload, a fresh controller + NoC built from its platform, and a fresh fault
injector from its fault plan.

Determinism is the contract: the per-system RNG seed is derived from the
scenario's *content key* and the system index via
:func:`repro.core.serialization.content_hash` (SHA-256 of canonical JSON), so
materialisation is a pure function of ``(scenario, system_index)`` — bit
identical in-process, on any worker of a process pool, and across runs.  Any
change to any scenario field changes the content key and therefore the drawn
systems, which keeps content-addressed caches honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from repro.core.memo import get_memo
from repro.core.serialization import content_hash
from repro.core.task import TaskSet
from repro.hardware.controller import IOController
from repro.hardware.devices import CANDevice, GPIOPin, IODevice, SPIDevice, UARTDevice
from repro.hardware.faults import FaultInjector
from repro.noc.network import NoCNetwork
from repro.noc.topology import MeshTopology
from repro.scenario.spec import PlatformSpec, Scenario
from repro.taskgen import SystemGenerator

#: Device factories resolvable from ``PlatformSpec.device_type``.
_DEVICE_FACTORIES: Dict[str, Callable[[str], IODevice]] = {
    "gpio": GPIOPin,
    "uart": UARTDevice,
    "spi": SPIDevice,
    "can": CANDevice,
}


def system_seed(scenario: Scenario, system_index: int) -> int:
    """The deterministic RNG seed of one ``(scenario, system index)`` pair.

    Derived from the scenario's content key, so scenarios differing in *any*
    field draw decorrelated workloads, while the same scenario always draws
    the same system at the same index — regardless of process or worker count.
    """
    if system_index < 0:
        raise ValueError(f"system_index must be non-negative, got {system_index}")
    return int(
        content_hash(
            {
                "purpose": "scenario-system-seed",
                "scenario": scenario.content_key(),
                "index": int(system_index),
            }
        ),
        16,
    )


@dataclass
class Platform:
    """The materialised execution platform of one run.

    ``controller`` is a fresh :class:`~repro.hardware.controller.IOController`
    (fault injector already attached) ready for the pre-load / schedule-load /
    run phases; ``network`` is a fresh NoC built from the same spec, used to
    model CPU-instigated I/O traffic.  Both are stateful simulation objects —
    materialise again for an independent run.
    """

    spec: PlatformSpec
    controller: IOController
    network: NoCNetwork

    @property
    def topology(self) -> MeshTopology:
        return self.network.topology

    @property
    def io_tile(self):
        """The router the I/O controller is attached to (the far corner)."""
        return self.spec.io_tile

    def cpu_tiles(self):
        """Every mesh tile except the controller's (candidate CPU sources)."""
        return [node for node in self.topology.nodes() if node != self.io_tile]


def build_platform(
    spec: PlatformSpec, *, fault_injector: Optional[FaultInjector] = None
) -> Platform:
    """Build a fresh controller + NoC pair from a platform description."""
    device_factory = _DEVICE_FACTORIES[spec.device_type]
    controller = IOController(
        memory_kb=spec.memory_kb,
        request_latency=spec.request_latency,
        response_latency=spec.response_latency,
        missing_request_policy=spec.missing_request_policy,
        timer_resolution=spec.timer_resolution,
        fault_injector=fault_injector,
        device_factory=device_factory,
    )
    network = NoCNetwork(
        MeshTopology(spec.mesh_width, spec.mesh_height),
        routing_delay=spec.routing_delay,
        flit_delay=spec.flit_delay,
        injection_delay=spec.injection_delay,
        ejection_delay=spec.ejection_delay,
    )
    return Platform(spec=spec, controller=controller, network=network)


@dataclass
class MaterializedScenario:
    """The concrete objects one scenario materialisation produced.

    Iterable as the ``(task_set, platform, faults)`` triple, so call sites can
    unpack it directly while still having the provenance fields at hand.
    """

    task_set: TaskSet
    platform: Platform
    faults: FaultInjector
    scenario: Scenario
    system_index: int
    seed: int

    def __iter__(self) -> Iterator:
        yield self.task_set
        yield self.platform
        yield self.faults


def _generate_task_set(scenario: Scenario, seed: int) -> TaskSet:
    """Draw the scenario's synthetic system (the expensive part of materialising)."""
    workload = scenario.workload
    generator = SystemGenerator(workload.generator, rng=seed)
    return generator.generate(workload.utilisation, workload.n_tasks)


def materialize(
    scenario: Scenario,
    system_index: int = 0,
    *,
    utilisation: Optional[float] = None,
) -> MaterializedScenario:
    """Materialise ``scenario`` at ``system_index``; pure in its arguments.

    ``utilisation`` overrides the workload's target utilisation (sweeps pin a
    different value per point); the override is folded into the scenario
    *before* seed derivation, exactly as if the scenario had been built with
    it, so an override and a pinned field are indistinguishable.
    """
    if utilisation is not None and utilisation != scenario.workload.utilisation:
        scenario = scenario.with_utilisation(utilisation)
    seed = system_seed(scenario, system_index)
    # The drawn task set is a pure function of (scenario content, index) and is
    # immutable once built, so warm workers reuse it from a bounded per-process
    # memo.  The platform and fault injector are stateful and always rebuilt.
    task_set = get_memo("materialize", 256).get_or_create(
        (scenario.content_key(), system_index),
        lambda: _generate_task_set(scenario, seed),
    )
    faults = FaultInjector(list(scenario.faults.faults))
    platform = build_platform(scenario.platform, fault_injector=faults)
    return MaterializedScenario(
        task_set=task_set,
        platform=platform,
        faults=faults,
        scenario=scenario,
        system_index=system_index,
        seed=seed,
    )
