"""The declarative scenario model: workload + platform + faults as one value.

A :class:`Scenario` is a frozen, versioned description of *everything* an
evaluation run needs beyond the scheduling method itself:

* :class:`WorkloadSpec` — which synthetic systems to generate (a
  :class:`~repro.taskgen.GeneratorConfig` plus target utilisation, task count
  rule and base seed);
* :class:`PlatformSpec` — the controller and NoC the schedule executes on
  (controller memory/latencies/timer, device type, mesh dimensions, link
  delays, background traffic);
* :class:`FaultPlanSpec` — the faults injected into the run, as declarative
  :class:`~repro.hardware.faults.FaultSpec` values.

Scenarios round-trip losslessly through the versioned JSON envelope of
:mod:`repro.core.serialization` (``kind="repro/scenario"``, version 1) and are
content-addressable via :meth:`Scenario.content_key`, following the same
discipline as :class:`~repro.service.messages.ScheduleRequest`: logically
equal scenarios hash identically, and *every* field — including the name —
participates in the key, so any change is a cache miss rather than a silently
reused stale schedule.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.core.serialization import (
    content_hash,
    parse_versioned_payload,
    versioned_payload,
)
from repro.hardware.faults import FAULT_KINDS, FaultSpec  # noqa: F401 (re-export)
from repro.taskgen import GeneratorConfig

SCENARIO_KIND = "repro/scenario"
SCENARIO_VERSION = 1

#: Device models a platform can attach to every controller processor
#: (resolved by :func:`repro.scenario.materialize.build_platform`).
DEVICE_TYPES = ("gpio", "uart", "spi", "can")

#: Fault-recovery policies of the controller's fault-recovery unit.
MISSING_REQUEST_POLICIES = ("skip", "execute")


def _check_positive(name: str, value: Any) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")


def _check_non_negative(name: str, value: Any) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")


def _from_dict(cls, data: Mapping[str, Any], label: str) -> Dict[str, Any]:
    """Validate keys of a plain-dict dataclass payload; returns the kwargs."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {label} fields: {sorted(unknown)}")
    return dict(data)


@dataclass(frozen=True)
class WorkloadSpec:
    """Which synthetic systems a scenario generates.

    ``utilisation`` is the default target system utilisation; consumers that
    sweep utilisation (the experiment engine) override it per point via
    :meth:`Scenario.with_utilisation`.  ``n_tasks=None`` applies the paper's
    rule ``|Gamma| = U / utilisation_per_task``.  ``seed`` selects the random
    stream; the concrete per-system seed is derived from the scenario's
    content key and the system index (see
    :func:`repro.scenario.materialize.system_seed`), so two scenarios that
    differ in any field draw decorrelated workloads.
    """

    utilisation: float = 0.5
    n_tasks: Optional[int] = None
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.generator, Mapping):
            object.__setattr__(
                self,
                "generator",
                GeneratorConfig(**_from_dict(GeneratorConfig, self.generator, "generator")),
            )
        if not isinstance(self.generator, GeneratorConfig):
            raise ValueError(f"generator must be a GeneratorConfig, got {self.generator!r}")
        if not isinstance(self.utilisation, (int, float)) or isinstance(self.utilisation, bool):
            raise ValueError(f"utilisation must be a number, got {self.utilisation!r}")
        if not self.utilisation > 0:
            raise ValueError(f"utilisation must be positive, got {self.utilisation!r}")
        if self.n_tasks is not None:
            _check_positive("n_tasks", self.n_tasks)
        _check_non_negative("seed", self.seed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "utilisation": self.utilisation,
            "n_tasks": self.n_tasks,
            "generator": asdict(self.generator),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(**_from_dict(cls, data, "workload"))


@dataclass(frozen=True)
class PlatformSpec:
    """The controller and NoC a scenario's schedule executes on.

    The defaults reproduce the platform of the paper's evaluation: a 32 KiB
    controller driving GPIO pins with unit request/response latencies, placed
    at the far corner of a 4x4 mesh with two background packets of competing
    application traffic per I/O request.
    """

    # -- controller --------------------------------------------------------------
    memory_kb: int = 32
    request_latency: int = 1
    response_latency: int = 1
    missing_request_policy: str = "skip"
    timer_resolution: int = 1
    device_type: str = "gpio"
    # -- NoC ---------------------------------------------------------------------
    mesh_width: int = 4
    mesh_height: int = 4
    routing_delay: int = 2
    flit_delay: int = 1
    injection_delay: int = 1
    ejection_delay: int = 1
    background_packets_per_job: int = 2

    def __post_init__(self) -> None:
        for name in ("memory_kb", "timer_resolution", "mesh_width", "mesh_height"):
            _check_positive(name, getattr(self, name))
        for name in (
            "request_latency",
            "response_latency",
            "routing_delay",
            "flit_delay",
            "injection_delay",
            "ejection_delay",
            "background_packets_per_job",
        ):
            _check_non_negative(name, getattr(self, name))
        if self.mesh_width * self.mesh_height < 2:
            raise ValueError(
                "the mesh needs at least 2 nodes (one I/O tile plus one CPU tile); "
                f"got {self.mesh_width}x{self.mesh_height}"
            )
        if self.device_type not in DEVICE_TYPES:
            raise ValueError(
                f"unknown device type {self.device_type!r}; expected one of {DEVICE_TYPES}"
            )
        if self.missing_request_policy not in MISSING_REQUEST_POLICIES:
            raise ValueError(
                f"unknown missing-request policy {self.missing_request_policy!r}; "
                f"expected one of {MISSING_REQUEST_POLICIES}"
            )

    @property
    def io_tile(self) -> Tuple[int, int]:
        """Mesh coordinates of the I/O controller's router (the far corner)."""
        return (self.mesh_width - 1, self.mesh_height - 1)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        return cls(**_from_dict(cls, data, "platform"))


@dataclass(frozen=True)
class FaultPlanSpec:
    """The declarative fault plan of a scenario.

    Each entry is a :class:`~repro.hardware.faults.FaultSpec` (kind validated
    against :data:`~repro.hardware.faults.FAULT_KINDS` at construction);
    :func:`repro.scenario.materialize.materialize` turns the plan into a fresh
    :class:`~repro.hardware.faults.FaultInjector` per run.
    """

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        coerced = []
        for entry in self.faults:
            if isinstance(entry, Mapping):
                entry = FaultSpec(**_from_dict(FaultSpec, entry, "fault"))
            if not isinstance(entry, FaultSpec):
                raise ValueError(f"fault entries must be FaultSpec values, got {entry!r}")
            coerced.append(entry)
        object.__setattr__(self, "faults", tuple(coerced))

    def __len__(self) -> int:
        return len(self.faults)

    def to_dict(self) -> Dict[str, Any]:
        return {"faults": [asdict(fault) for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlanSpec":
        payload = _from_dict(cls, data, "fault plan")
        return cls(faults=tuple(payload.get("faults") or ()))


@dataclass(frozen=True)
class Scenario:
    """One complete, serialisable description of an evaluation scenario.

    Frozen and hashable, so scenarios can ride inside other frozen values
    (:class:`~repro.service.messages.ScheduleRequest`,
    :class:`~repro.experiments.config.ExperimentConfig`) and travel to worker
    processes by pickling.  Use :func:`dataclasses.replace` or the
    ``with_*`` helpers to derive variants.
    """

    name: str = "custom"
    description: str = ""
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    faults: FaultPlanSpec = field(default_factory=FaultPlanSpec)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name or self.name != self.name.strip():
            raise ValueError(f"scenario name must be a non-empty stripped string, got {self.name!r}")
        if isinstance(self.workload, Mapping):
            object.__setattr__(self, "workload", WorkloadSpec.from_dict(self.workload))
        if isinstance(self.platform, Mapping):
            object.__setattr__(self, "platform", PlatformSpec.from_dict(self.platform))
        if isinstance(self.faults, (list, tuple)):
            object.__setattr__(self, "faults", FaultPlanSpec(faults=tuple(self.faults)))
        elif isinstance(self.faults, Mapping):
            object.__setattr__(self, "faults", FaultPlanSpec.from_dict(self.faults))
        for attr, expected in (
            ("workload", WorkloadSpec),
            ("platform", PlatformSpec),
            ("faults", FaultPlanSpec),
        ):
            if not isinstance(getattr(self, attr), expected):
                raise ValueError(
                    f"scenario {attr} must be a {expected.__name__}, got {getattr(self, attr)!r}"
                )

    # -- derivation --------------------------------------------------------------

    def with_utilisation(self, utilisation: float) -> "Scenario":
        """A copy pinning the workload's target utilisation (sweep points)."""
        return replace(self, workload=replace(self.workload, utilisation=utilisation))

    def with_workload(self, **overrides: Any) -> "Scenario":
        return replace(self, workload=replace(self.workload, **overrides))

    def with_platform(self, **overrides: Any) -> "Scenario":
        return replace(self, platform=replace(self.platform, **overrides))

    def with_faults(self, faults: Iterable[FaultSpec]) -> "Scenario":
        return replace(self, faults=FaultPlanSpec(faults=tuple(faults)))

    # -- serialisation -----------------------------------------------------------

    def data_dict(self) -> Dict[str, Any]:
        """The bare (unversioned) payload; every field enters the content key."""
        return {
            "name": self.name,
            "description": self.description,
            "workload": self.workload.to_dict(),
            "platform": self.platform.to_dict(),
            "faults": self.faults.to_dict(),
        }

    def to_dict(self) -> Dict[str, Any]:
        return versioned_payload(SCENARIO_KIND, SCENARIO_VERSION, self.data_dict())

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        _, data = parse_versioned_payload(
            dict(payload), SCENARIO_KIND, max_version=SCENARIO_VERSION
        )
        kwargs = _from_dict(cls, data, "scenario")
        return cls(
            name=kwargs.get("name", "custom"),
            description=kwargs.get("description", ""),
            workload=WorkloadSpec.from_dict(kwargs.get("workload") or {}),
            platform=PlatformSpec.from_dict(kwargs.get("platform") or {}),
            faults=FaultPlanSpec.from_dict(kwargs.get("faults") or {}),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def content_key(self) -> str:
        """Content-address of the full scenario (any field change changes it).

        The scenario is frozen, so the key is hashed once and memoised; the
        cached string also rides along in pickles, saving pool workers the
        re-hash.
        """
        cached = self.__dict__.get("_content_key")
        if cached is None:
            cached = content_hash(self.data_dict())
            object.__setattr__(self, "_content_key", cached)
        return cached


#: Anything :func:`repro.scenario.registry.create_scenario` can resolve.
ScenarioLike = Union[str, Mapping, Scenario]
