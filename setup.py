"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed in environments without the ``wheel`` package (legacy
``pip install -e . --no-use-pep517`` path, needed on offline machines).
"""

from setuptools import setup

setup()
